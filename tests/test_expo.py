"""repro.obs.expo: Prometheus text rendering, golden file, HTTP parity.

The validation parser below is a deliberately minimal OpenMetrics /
Prometheus-text-format line parser (no third-party dependency): it
checks line grammar, HELP/TYPE pairing, family uniqueness, and
histogram invariants (cumulative buckets, mandatory ``+Inf``,
``_count`` agreement) — exactly the properties a real scraper relies
on.
"""

import json
import os
import re
import urllib.request

import pytest

from repro import Database, JoinSynopsisMaintainer, MaintainerConfig
from repro.obs import MetricsRegistry, render_exposition
from repro.obs import names as metric_names
from repro.obs.expo import CONTENT_TYPE, sanitize_name

from conftest import make_tables

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "metrics.prom")

_SAMPLE_RE = re.compile(
    r'^([a-zA-Z_][a-zA-Z0-9_]*)'        # metric name
    r'(?:\{([^}]*)\})?'                 # optional label set
    r' (NaN|[+-]?Inf|[0-9eE.+-]+)$'     # value
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_labels(body):
    """A ``k="v",...`` label body as a dict (grammar-checked)."""
    if body is None:
        return {}
    labels = {}
    rebuilt = []
    for match in _LABEL_RE.finditer(body):
        labels[match.group(1)] = match.group(2)
        rebuilt.append(match.group(0))
    assert ",".join(rebuilt) == body, f"malformed label set: {body!r}"
    return labels


def parse_exposition(text):
    """Parse Prometheus text format into ``{family: parsed}`` dicts.

    Returns a mapping from family name to ``{"help": str, "type": str
    or None, "samples": [(sample_name, labels_dict, float_value)]}``.
    Raises AssertionError on any grammar or structural violation.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families = {}
    current = None
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in families, f"family {name} repeated"
            current = {"help": help_text, "type": None, "samples": []}
            families[name] = current
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            assert current is not None and name in families
            assert kind in ("counter", "gauge", "histogram"), kind
            assert families[name]["type"] is None, f"{name} re-typed"
            families[name]["type"] = kind
        elif line.startswith("#"):
            raise AssertionError(f"unknown comment line: {line!r}")
        else:
            match = _SAMPLE_RE.match(line)
            assert match, f"malformed sample line: {line!r}"
            sample_name, label_body, raw = match.groups()
            value = float(raw)
            family = _owning_family(families, sample_name)
            assert family is not None, \
                f"sample {sample_name} precedes its HELP line"
            families[family]["samples"].append(
                (sample_name, _parse_labels(label_body), value))
    for name, family in families.items():
        assert family["samples"], f"family {name} has no samples"
        if family["type"] == "histogram":
            _check_histogram(name, family["samples"])
    return families


def _owning_family(families, sample_name):
    for suffix in ("", "_bucket", "_sum", "_count"):
        if suffix and sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
        elif suffix:
            continue
        else:
            base = sample_name
        if base in families:
            return base
    return None


def _check_histogram(name, samples):
    # labeled children are independent histogram series within the
    # family: group by the non-le label set, check each series
    def series_key(labels):
        return tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"))

    buckets = {}
    counts = {}
    for n, labels, v in samples:
        if n == f"{name}_bucket":
            assert "le" in labels, f"{name} bucket missing le"
            buckets.setdefault(series_key(labels), []).append(
                (labels["le"], v))
        elif n == f"{name}_count":
            counts.setdefault(series_key(labels), []).append(v)
    assert buckets and set(buckets) == set(counts), \
        f"{name} bucket/count series mismatch"
    for key, series in buckets.items():
        (count,) = counts[key]
        assert series[-1][0] == "+Inf", "last bucket must be le=+Inf"
        values = [v for _, v in series]
        assert values == sorted(values), f"{name} buckets not cumulative"
        assert series[-1][1] == count, \
            f"{name} +Inf bucket disagrees with _count"
        uppers = [float(le) for le, _ in series[:-1]]
        assert uppers == sorted(uppers), f"{name} le bounds out of order"


# ----------------------------------------------------------------------
# renderer units
# ----------------------------------------------------------------------
class TestRenderer:
    def test_sanitize_name(self):
        assert sanitize_name("engine.insert_ns") == \
            "repro_engine_insert_ns"
        assert sanitize_name("table.ss.insert_ns") == \
            "repro_table_ss_insert_ns"
        assert sanitize_name("9weird-name") == "repro__9weird_name"

    def test_counter_gauge_histogram_render(self):
        registry = MetricsRegistry()
        registry.counter("synopsis.accepts").inc(3)
        registry.gauge("synopsis.size").set(7)
        hist = registry.histogram("engine.insert_ns")
        hist.observe(1)
        hist.observe(1000)
        families = parse_exposition(render_exposition(registry.snapshot()))
        accepts = families["repro_synopsis_accepts"]
        assert accepts["type"] == "counter"
        assert accepts["samples"] == [("repro_synopsis_accepts", {}, 3.0)]
        size = families["repro_synopsis_size"]
        assert size["type"] == "gauge"
        assert size["samples"] == [("repro_synopsis_size", {}, 7.0)]
        hist_family = families["repro_engine_insert_ns"]
        assert hist_family["type"] == "histogram"
        samples = dict(
            ((n, labels.get("le")), v)
            for n, labels, v in hist_family["samples"])
        # log2 buckets: 1 lands in upper bound 1, 1000 in 1023;
        # cumulative counts must therefore read 1 then 2
        assert samples[("repro_engine_insert_ns_bucket", "1.0")] == 1.0
        assert samples[("repro_engine_insert_ns_bucket", "1023.0")] == 2.0
        assert samples[("repro_engine_insert_ns_bucket", "+Inf")] == 2.0
        assert samples[("repro_engine_insert_ns_sum", None)] == 1001.0
        assert samples[("repro_engine_insert_ns_count", None)] == 2.0

    def test_labeled_children_group_under_one_family(self):
        registry = MetricsRegistry()
        estimates = registry.counter("aqp.estimates")
        estimates.inc(5)
        estimates.labels(query="q1").inc(3)
        estimates.labels(query="q2").inc(2)
        text = render_exposition(registry.snapshot())
        families = parse_exposition(text)
        family = families["repro_aqp_estimates"]
        assert family["type"] == "counter"
        # unlabeled head first, children after it in label order
        assert family["samples"] == [
            ("repro_aqp_estimates", {}, 5.0),
            ("repro_aqp_estimates", {"query": "q1"}, 3.0),
            ("repro_aqp_estimates", {"query": "q2"}, 2.0),
        ]
        # HELP/TYPE appear exactly once for the whole family
        assert text.count("# HELP repro_aqp_estimates ") == 1
        assert text.count("# TYPE repro_aqp_estimates ") == 1

    def test_labeled_histogram_renders_per_series_buckets(self):
        registry = MetricsRegistry()
        lag = registry.histogram("replicate.lag_ms")
        lag.labels(role="leader").observe(3)
        lag.labels(role="follower").observe(700)
        families = parse_exposition(render_exposition(registry.snapshot()))
        family = families["repro_replicate_lag_ms"]
        assert family["type"] == "histogram"
        by_series = {}
        for n, labels, v in family["samples"]:
            if n.endswith("_count"):
                by_series[labels.get("role")] = v
        # the (empty) head plus one series per role
        assert by_series == {None: 0.0, "leader": 1.0, "follower": 1.0}
        # bucket lines carry the role label alongside le
        leader_buckets = [
            labels for n, labels, v in family["samples"]
            if n.endswith("_bucket") and labels.get("role") == "leader"]
        assert leader_buckets and all("le" in l for l in leader_buckets)

    def test_label_values_escape_quotes_and_backslashes(self):
        registry = MetricsRegistry()
        registry.gauge("aqp.coverage").labels(
            query='we"ird\\name').set(0.9)
        families = parse_exposition(render_exposition(registry.snapshot()))
        (head, child) = families["repro_aqp_coverage"]["samples"]
        assert head == ("repro_aqp_coverage", {}, 0.0)
        # the parser keeps the escaped form; unescaping restores the raw
        assert child[1]["query"].replace(r'\"', '"').replace(
            r"\\", "\\") == 'we"ird\\name'

    def test_bare_numbers_render_untyped(self):
        families = parse_exposition(render_exposition(
            {"engine.work_units": 12, "engine.load": 0.5}))
        work = families["repro_engine_work_units"]
        assert work["type"] is None
        assert work["samples"] == [("repro_engine_work_units", {}, 12.0)]
        assert families["repro_engine_load"]["samples"][0][2] == 0.5

    def test_empty_snapshot_renders_empty(self):
        assert render_exposition({}) == ""

    def test_help_line_carries_the_catalogue_name(self):
        registry = MetricsRegistry()
        registry.counter("fk.lookups").inc()
        families = parse_exposition(render_exposition(registry.snapshot()))
        assert families["repro_fk_lookups"]["help"] == "fk.lookups"


# ----------------------------------------------------------------------
# catalogue coverage: every instrument, exactly once
# ----------------------------------------------------------------------
def touch_catalogue(registry):
    """Exercise every name in the catalogue with its documented type."""
    histograms = {name for name in metric_names.ALL_METRIC_NAMES
                  if name.endswith("_ns")}
    histograms.add(metric_names.SERVICE_BATCH_OPS)
    histograms.add(metric_names.REPLICATE_LAG_MS)
    gauges = {
        metric_names.GRAPH_AVL_ROTATIONS,
        metric_names.GRAPH_INDEX_MAINTENANCE_OPS,
        metric_names.SYNOPSIS_SIZE, metric_names.TOTAL_RESULTS,
        metric_names.TRACE_EVENTS, metric_names.TRACE_DROPPED,
        metric_names.TRACE_SLOW_OPS,
        metric_names.QUALITY_PROBE_ROUNDS,
        metric_names.QUALITY_PROBES_DRAWN,
        metric_names.QUALITY_CHI_SQUARE, metric_names.QUALITY_KS_RATIO,
        metric_names.QUALITY_FLAGGED, metric_names.QUALITY_EPOCH_LAG,
        metric_names.QUALITY_STALENESS_SECONDS,
        metric_names.AQP_RELATIVE_ERROR, metric_names.AQP_COVERAGE,
        metric_names.AQP_COVERAGE_FLAGGED,
        metric_names.EVENTS_EMITTED, metric_names.EVENTS_DROPPED,
        metric_names.REPLICATE_ACKED_LSN,
        metric_names.REPLICATE_APPLIED_LSN,
        metric_names.REPLICATE_EPOCH_LAG,
        metric_names.REPLICATE_STALENESS_SECONDS,
        metric_names.SERVICE_QUEUE_DEPTH, metric_names.SERVICE_EPOCH,
        metric_names.SERVICE_EPOCH_LAG,
    }
    for name in metric_names.ALL_METRIC_NAMES:
        if name in histograms:
            registry.histogram(name).observe(1)
        elif name in gauges:
            registry.gauge(name).set(1)
        else:
            registry.counter(name).inc()


def test_every_catalogue_name_renders_exactly_once():
    registry = MetricsRegistry()
    touch_catalogue(registry)
    families = parse_exposition(render_exposition(registry.snapshot()))
    rendered = set(families)
    expected = {sanitize_name(name)
                for name in metric_names.ALL_METRIC_NAMES}
    assert rendered == expected
    # "exactly once" is enforced structurally: parse_exposition raises
    # on a repeated HELP line, so set equality completes the check
    assert len(metric_names.ALL_METRIC_NAMES) == len(expected)


# ----------------------------------------------------------------------
# golden file
# ----------------------------------------------------------------------
def golden_snapshot():
    """A small deterministic snapshot exercising every rendering rule."""
    registry = MetricsRegistry()
    registry.counter("synopsis.accepts").inc(3)
    registry.counter("service.ops_applied").inc(41)
    registry.gauge("synopsis.size").set(7)
    registry.gauge("quality.flagged").set(0)
    hist = registry.histogram("engine.insert_ns")
    for value in (1, 6, 6, 900):
        hist.observe(value)
    # a labeled family: per-query audit children under one family header
    estimates = registry.counter("aqp.estimates")
    estimates.inc(9)
    estimates.labels(query="q1").inc(6)
    estimates.labels(query="q2").inc(3)
    registry.histogram("replicate.lag_ms").labels(
        role="follower").observe(250)
    snapshot = dict(registry.snapshot())
    snapshot["engine.work_units"] = 12        # bare work counter
    return snapshot


def test_exposition_matches_golden_file():
    rendered = render_exposition(golden_snapshot())
    with open(GOLDEN_PATH) as fh:
        golden = fh.read()
    assert rendered == golden, (
        "exposition drifted from tests/golden/metrics.prom; if the "
        "change is intentional, regenerate the golden file")
    parse_exposition(golden)


# ----------------------------------------------------------------------
# HTTP + client parity
# ----------------------------------------------------------------------
@pytest.fixture
def service():
    from repro.service import ServiceConfig, SynopsisService

    db = Database()
    make_tables(db, [("r", 2), ("s", 2)])
    maintainer = JoinSynopsisMaintainer(
        db, "SELECT * FROM r, s WHERE r.c0 = s.c0",
        MaintainerConfig(seed=1, obs=MetricsRegistry()))
    svc = SynopsisService(maintainer,
                          ServiceConfig(obs=MetricsRegistry()))
    yield svc
    svc.close()


def test_http_metrics_endpoint_serves_parsable_text(service):
    from repro.service import ServiceHTTPServer

    service.insert("r", (1, 1))
    service.insert("s", (1, 2))
    with ServiceHTTPServer(service, port=0) as server:
        host, port = server.address
        response = urllib.request.urlopen(
            f"http://{host}:{port}/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"] == CONTENT_TYPE
        body = response.read().decode("utf-8")
    families = parse_exposition(body)
    assert "repro_service_epoch" in families
    assert "repro_service_ops_applied" in families
    assert "repro_engine_insert_ns" in families


def test_local_client_metrics_parity(service):
    from repro.service import LocalServiceClient

    service.insert("r", (2, 1))
    client = LocalServiceClient(service)
    assert client.metrics() == service.exposition()
    parse_exposition(client.metrics())


def test_exposition_covers_view_and_service_registries(service):
    # target work counters (captured in the view) and live service
    # instruments must land in one exposition
    service.insert("r", (3, 1))
    service.insert("s", (3, 2))
    families = parse_exposition(service.exposition())
    assert "repro_synopsis_total_results" in families
    assert "repro_service_ingest_batch_ns" in families


def test_cli_metrics_subcommand_output_parses(capsys):
    from repro.cli import main

    main(["metrics", "--query", "QY", "--scale", "tiny",
          "--budget", "5"])
    out = capsys.readouterr().out
    families = parse_exposition(out)
    assert "repro_engine_insert_ns" in families
    assert json.dumps(sorted(families)) is not None
