"""Statistical validation across a restore (Theorem 5.1 + durability).

A checkpoint/restore in the middle of the update stream must not bias
the synopsis: the restored process continues with the *captured* RNG
state, so over many independent seeds the post-restore synopsis must
remain a uniform sample of the surviving join results — for every
synopsis type.  A companion test pins the stronger per-seed property the
uniformity argument rests on: the restored maintainer draws the exact
same future sample stream as a never-restarted twin.
"""

import pickle
import random
from collections import Counter

import pytest

from repro import MaintainerConfig
from repro import JoinExecutor, SynopsisSpec, parse_query
from repro.catalog.database import Database
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.persist import (
    capture_database,
    capture_maintainer,
    restore_database,
    restore_maintainer,
)

from conftest import chi_square_threshold, chi_square_uniform, make_tables
from test_uniformity import build_workload

SQL = "SELECT * FROM r, s WHERE r.c0 = s.c0"
TRIALS = 400


def make_maintainer(spec, seed):
    db = Database()
    make_tables(db, [("r", 2), ("s", 2)])
    return JoinSynopsisMaintainer(db, SQL, MaintainerConfig(spec=spec, seed=seed))


def apply_script(maintainer, script):
    for op, alias, payload in script:
        if op == "insert":
            maintainer.insert(alias, payload)
        else:
            maintainer.delete(alias, payload)


def round_trip(maintainer):
    """Capture, pickle, restore: the crash-recovery path in miniature."""
    blob = pickle.dumps({
        "database": capture_database(maintainer.db),
        "maintainer": capture_maintainer(maintainer),
    })
    state = pickle.loads(blob)
    db = restore_database(state["database"])
    return restore_maintainer(db, state["maintainer"])


def run_with_restore(spec, seed, script):
    """Apply half the workload, restore from a snapshot, finish it."""
    maintainer = make_maintainer(spec, seed)
    half = len(script) // 2
    apply_script(maintainer, script[:half])
    maintainer = round_trip(maintainer)
    apply_script(maintainer, script[half:])
    return maintainer


@pytest.fixture(scope="module")
def script():
    return build_workload(random.Random(20240615))


@pytest.fixture(scope="module")
def exact_results(script):
    maintainer = make_maintainer(SynopsisSpec.fixed_size(1), 0)
    apply_script(maintainer, script)
    query = parse_query(SQL, maintainer.db)
    return sorted(JoinExecutor(maintainer.db, query).results())


class TestPostRestoreUniformity:
    def test_fixed_without_replacement(self, script, exact_results):
        m = 4
        counts = Counter()
        for t in range(TRIALS):
            maintainer = run_with_restore(
                SynopsisSpec.fixed_size(m), t, script)
            samples = maintainer.engine.raw_samples()
            assert len(samples) == min(m, len(exact_results))
            assert len(set(samples)) == len(samples)
            for s in samples:
                counts[s] += 1
        stat = chi_square_uniform([counts[r] for r in exact_results])
        assert stat < chi_square_threshold(len(exact_results) - 1)

    def test_fixed_with_replacement(self, script, exact_results):
        counts = Counter()
        for t in range(TRIALS):
            maintainer = run_with_restore(
                SynopsisSpec.with_replacement(3), t, script)
            for s in maintainer.engine.raw_samples():
                counts[s] += 1
        stat = chi_square_uniform([counts[r] for r in exact_results])
        assert stat < chi_square_threshold(len(exact_results) - 1)

    def test_bernoulli(self, script, exact_results):
        p = 0.25
        counts = Counter()
        sizes = 0
        for t in range(TRIALS):
            maintainer = run_with_restore(
                SynopsisSpec.bernoulli(p), t, script)
            samples = maintainer.engine.raw_samples()
            sizes += len(samples)
            for s in samples:
                counts[s] += 1
        n = len(exact_results)
        assert abs(sizes / (TRIALS * n) - p) < 0.05
        stat = chi_square_uniform([counts[r] for r in exact_results])
        assert stat < chi_square_threshold(n - 1)


class TestSeededBitIdentity:
    """The per-seed mechanism behind the aggregate uniformity: a restore
    replays the captured RNG state, so the restored maintainer and a
    never-restarted twin draw identical future sample streams."""

    @pytest.mark.parametrize("spec", [
        SynopsisSpec.fixed_size(4),
        SynopsisSpec.with_replacement(3),
        SynopsisSpec.bernoulli(0.25),
    ], ids=["fixed", "with_replacement", "bernoulli"])
    def test_restored_draws_match_twin(self, script, spec):
        half = len(script) // 2
        twin = make_maintainer(spec, 42)
        apply_script(twin, script)

        restored = make_maintainer(spec, 42)
        apply_script(restored, script[:half])
        restored = round_trip(restored)
        apply_script(restored, script[half:])

        assert restored.engine.raw_samples() == twin.engine.raw_samples()
        assert restored.total_results() == twin.total_results()
        assert restored.engine.rng.getstate() == twin.engine.rng.getstate()
