"""The aggregate-index backend registry and its end-to-end plumbing.

Covers the :mod:`repro.index.api` registry contract, construction-time
validation of backend names through the maintainer/manager layers, and a
cross-backend differential: every registered backend must produce the
*identical* synopsis for the same seed and update stream, because all
backends break ties between equal keys by insertion order.
"""

import random

import pytest

from repro import MaintainerConfig
from repro import Column, Database, TableSchema
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.core.manager import SynopsisManager
from repro.core.synopsis import SynopsisSpec
from repro.errors import IndexBackendError, ReproError
from repro.index.api import (
    RETIRED_BACKENDS,
    AggregateIndex,
    available_backends,
    default_backend,
    make_index,
    register_backend,
    resolve_backend,
    retired_fallback,
    unregister_backend,
)
from repro.index.avl import AggregateTree
from repro.index.fenwick import FenwickArena
from repro.index.skiplist import AggregateSkipList

from conftest import make_tables

SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0"


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
    return db


def value_of(item, slot):
    return 1


# ----------------------------------------------------------------------
# registry contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ("avl", "fenwick")

    def test_make_index_dispatches(self):
        classes = {"avl": AggregateTree, "fenwick": FenwickArena}
        for name, cls in classes.items():
            index = make_index(name, 2, value_of)
            assert isinstance(index, cls)
            assert isinstance(index, AggregateIndex)
            assert index.backend_name == name
            assert index.num_slots == 2

    def test_unknown_backend_lists_choices(self):
        with pytest.raises(IndexBackendError) as exc:
            make_index("btree", 1, value_of)
        message = str(exc.value)
        for name in available_backends():
            assert name in message

    def test_backend_error_is_value_error_and_repro_error(self):
        with pytest.raises(ValueError):
            resolve_backend("btree")
        with pytest.raises(ReproError):
            resolve_backend("btree")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(IndexBackendError, match="already registered"):
            register_backend("avl", AggregateTree)

    def test_register_replace_and_unregister(self):
        register_backend("avl2", AggregateTree)
        try:
            assert "avl2" in available_backends()
            register_backend("avl2", AggregateSkipList, replace=True)
            assert isinstance(make_index("avl2", 1, value_of),
                              AggregateSkipList)
        finally:
            unregister_backend("avl2")
        assert "avl2" not in available_backends()

    def test_resolve_none_yields_default(self):
        assert resolve_backend(None) == default_backend()

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BACKEND", "fenwick")
        assert default_backend() == "fenwick"
        assert resolve_backend(None) == "fenwick"
        engine = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(4), seed=0))
        assert engine.index_backend == "fenwick"

    def test_bad_env_var_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BACKEND", "btree")
        with pytest.raises(IndexBackendError, match="REPRO_INDEX_BACKEND"):
            default_backend()


# ----------------------------------------------------------------------
# retired backends
# ----------------------------------------------------------------------
class TestRetiredBackends:
    def test_skiplist_is_retired(self):
        assert "skiplist" in RETIRED_BACKENDS
        assert "skiplist" not in available_backends()

    def test_resolve_rejects_retired_name_with_reason(self):
        with pytest.raises(IndexBackendError, match="retired") as exc:
            resolve_backend("skiplist")
        # the message must tell the operator where to go
        assert "avl" in str(exc.value)

    def test_make_index_rejects_retired_name(self):
        with pytest.raises(IndexBackendError, match="retired"):
            make_index("skiplist", 2, value_of)

    def test_register_rejects_retired_name(self):
        with pytest.raises(IndexBackendError, match="retired"):
            register_backend("skiplist", AggregateSkipList)
        with pytest.raises(IndexBackendError, match="retired"):
            register_backend("skiplist", AggregateSkipList, replace=True)

    def test_env_var_naming_retired_backend_fails_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BACKEND", "skiplist")
        with pytest.raises(IndexBackendError, match="retired"):
            default_backend()

    def test_retired_fallback_is_builtin_default(self):
        assert retired_fallback("skiplist") == "avl"

    def test_maintainer_rejects_retired_backend(self):
        with pytest.raises(IndexBackendError, match="retired"):
            JoinSynopsisMaintainer(make_db(), SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(4), index_backend="skiplist"))

    def test_class_stays_importable_and_functional(self):
        # retirement removes the registry name, not the implementation
        index = AggregateSkipList(2, value_of)
        assert isinstance(index, AggregateIndex)


# ----------------------------------------------------------------------
# construction-time validation through the layers
# ----------------------------------------------------------------------
class TestConstructionValidation:
    def test_maintainer_rejects_unknown_backend(self):
        with pytest.raises(IndexBackendError) as exc:
            JoinSynopsisMaintainer(make_db(), SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(4), index_backend="btree"))
        for name in available_backends():
            assert name in str(exc.value)

    def test_manager_rejects_unknown_backend(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=0))
        with pytest.raises(IndexBackendError):
            manager.register("q", SQL, MaintainerConfig(index_backend="btree"))
        # the failed registration must not leave a half-registered query
        assert manager.names() == []

    def test_maintainer_stats_report_backend(self):
        for backend in available_backends():
            maintainer = JoinSynopsisMaintainer(
                make_db(), SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(4), seed=3, index_backend=backend))
            assert maintainer.index_backend == backend
            assert maintainer.stats().index_backend == backend


# ----------------------------------------------------------------------
# cross-backend differential over the full engine
# ----------------------------------------------------------------------
def drive(maintainer, rng, n, delete_prob):
    live = {"r": [], "s": [], "t": []}
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        if live[alias] and rng.random() < delete_prob:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            maintainer.delete(alias, tid)
        else:
            tid = maintainer.insert(
                alias, (rng.randrange(5), rng.randrange(5)))
            if tid >= 0:
                live[alias].append(tid)


@pytest.mark.parametrize("delete_prob", [0.25, 0.65],
                         ids=["mixed", "delete-heavy"])
@pytest.mark.parametrize("seed", [1, 17, 23456])
def test_backends_yield_identical_synopses(seed, delete_prob):
    """Same seed + same update stream ⇒ the same sample, whichever
    backend maintains the aggregate indexes."""
    results = {}
    for backend in available_backends():
        maintainer = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(8), engine="sjoin-opt", seed=seed, index_backend=backend))
        drive(maintainer, random.Random(seed), 250, delete_prob)
        maintainer.engine.graph.check_invariants()
        results[backend] = (
            maintainer.total_results(),
            maintainer.engine.raw_samples(),
            maintainer.synopsis(),
        )
    baseline = results["avl"]
    for backend, got in results.items():
        assert got == baseline, backend
