"""repro.obs.events: the structured JSON event log.

Ring mechanics (bounded overwrite, copy-on-read, prefix filtering), the
JSON-line logging sink, gauge publication, the null-object contract,
and the fan-in wiring: tracer slow-op promotion and quality-monitor
flags land in one shared log.
"""

import json
import logging

import pytest

from repro.errors import InvalidArgumentError
from repro.obs import names as metric_names
from repro.obs.events import (
    NULL_EVENTS,
    EventLog,
    NullEventLog,
    as_event_log,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now


def quiet_log(**kwargs):
    kwargs.setdefault("sink", lambda payload: None)
    return EventLog(**kwargs)


class TestRing:
    def test_emit_records_seq_clock_kind_fields(self):
        clock = FakeClock(42.5)
        log = quiet_log(clock=clock)
        event = log.emit("replicate.stall", staleness=7.0)
        assert (event.seq, event.at, event.kind) == \
            (0, 42.5, "replicate.stall")
        assert event.fields == {"staleness": 7.0}
        assert event.to_dict() == {
            "seq": 0, "at": 42.5, "kind": "replicate.stall",
            "fields": {"staleness": 7.0},
        }

    def test_bounded_ring_overwrites_oldest(self):
        log = quiet_log(capacity=3)
        for i in range(5):
            log.emit("k", i=i)
        assert log.emitted == 5
        assert log.dropped == 2
        assert [e.fields["i"] for e in log.events()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidArgumentError):
            EventLog(capacity=0)

    def test_kind_filter_matches_dotted_prefix(self):
        log = quiet_log()
        log.emit("quality.flag")
        log.emit("quality.clear")
        log.emit("qualityx.other")
        log.emit("replicate.stall")
        kinds = [e.kind for e in log.events("quality")]
        assert kinds == ["quality.flag", "quality.clear"]
        # exact-kind match also works
        assert [e.kind for e in log.events("quality.flag")] == \
            ["quality.flag"]

    def test_payload_shape(self):
        log = quiet_log(capacity=2, clock=FakeClock(1.0))
        log.emit("a.one")
        log.emit("a.two")
        log.emit("b.three")
        payload = log.payload()
        assert payload["emitted"] == 3
        assert payload["dropped"] == 1
        assert [e["kind"] for e in payload["events"]] == \
            ["a.two", "b.three"]
        assert log.payload("a") == {
            "events": [{"seq": 1, "at": 1.0, "kind": "a.two"}],
            "emitted": 3, "dropped": 1,
        }
        json.dumps(payload)  # JSON-shaped end to end

    def test_publish_sets_gauges(self):
        log = quiet_log(capacity=1)
        log.emit("a")
        log.emit("b")
        obs = MetricsRegistry()
        log.publish(obs)
        snap = obs.snapshot()
        assert snap[metric_names.EVENTS_EMITTED]["value"] == 2
        assert snap[metric_names.EVENTS_DROPPED]["value"] == 1
        log.publish(NULL_REGISTRY)  # disabled registry: a no-op


class TestSink:
    def test_default_sink_logs_one_json_line(self, caplog):
        log = EventLog(clock=FakeClock(9.0))
        with caplog.at_level(logging.INFO, logger="repro.events"):
            log.emit("quality.flag", chi_square=12.0)
        (record,) = caplog.records
        parsed = json.loads(record.getMessage())
        assert parsed == {
            "seq": 0, "at": 9.0, "kind": "quality.flag",
            "fields": {"chi_square": 12.0},
        }

    def test_custom_sink_sees_every_event(self):
        seen = []
        log = EventLog(sink=seen.append)
        log.emit("a", x=1)
        log.emit("b")
        assert [p["kind"] for p in seen] == ["a", "b"]


class TestNull:
    def test_null_contract(self):
        assert NULL_EVENTS.enabled is False
        assert EventLog(sink=lambda p: None).enabled is True
        assert NULL_EVENTS.emit("k", x=1) is None
        assert NULL_EVENTS.events() == []
        assert NULL_EVENTS.payload() == \
            {"events": [], "emitted": 0, "dropped": 0}
        assert NULL_EVENTS.publish(MetricsRegistry()) is None
        assert isinstance(NULL_EVENTS, NullEventLog)

    def test_as_event_log_normalisation(self):
        assert as_event_log(None) is NULL_EVENTS
        real = quiet_log()
        assert as_event_log(real) is real


class TestFanIn:
    def test_tracer_promotes_slow_ops_into_the_log(self):
        log = quiet_log()
        clock = {"now": 0}
        tracer = Tracer(slow_op_threshold_ns=100,
                        sink=lambda payload: None,
                        clock=lambda: clock["now"], events=log)
        span = tracer.start("insert", target="r", batch=4)
        clock["now"] = 250
        tracer.finish(span)
        (event,) = log.events("trace.slow_op")
        assert event.fields["target"] == "r"
        assert event.fields["duration_ns"] == 250
        assert event.fields["batch"] == 4

    def test_tracer_event_log_is_reassignable(self):
        tracer = Tracer(slow_op_threshold_ns=0,
                        sink=lambda payload: None,
                        clock=lambda: 0)
        assert tracer.event_log is NULL_EVENTS
        log = quiet_log()
        tracer.event_log = log
        tracer.finish(tracer.start("insert"))
        assert [e.kind for e in log.events()] == ["trace.slow_op"]
        # the ring-snapshot method is still a method, not the log
        assert len(tracer.events()) == 1
