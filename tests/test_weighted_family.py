"""Weighted + subset synopsis families: statistical validity against
exact weight-proportional targets, and the weight≡1 differential
identity with the uniform family.

The weighted families run the uniform skip machinery over the weighted
*unit* domain, so with every tuple weighing 1 their whole trajectory —
samples AND the RNG stream — must be bit-identical to the corresponding
uniform kind.  With real weights, membership must track the exact
targets: ``m * w_r / J_w`` per sampled unit for the weighted kinds, and
``1 - (1-p) ** w_r`` inclusion for the subset family.
"""

import random
from collections import Counter

import pytest

from repro import (
    JoinSynopsisMaintainer,
    MaintainerConfig,
    SJoinEngine,
    SymmetricJoinEngine,
    SynopsisError,
    SynopsisSpec,
    SYNOPSIS_FAMILIES,
    family_of_kind,
    parse_query,
)
from repro.catalog.database import Database
from repro.query.predicates import MultiTableFilter
from repro.query.query import JoinQuery

from conftest import chi_square_threshold, make_tables

SQL = "SELECT * FROM r, s WHERE r.c0 = s.c0"

#: r rows are (join key, counter, weight); s rows are (join key, counter)
R_ROWS = [(0, 0, 1), (0, 1, 3), (1, 2, 2), (1, 3, 1), (2, 4, 4),
          (2, 5, 1)]
S_ROWS = [(0, 0), (0, 1), (1, 2), (1, 3), (2, 4)]


def build_engine(spec, seed):
    db = Database()
    make_tables(db, [("r", 3), ("s", 2)])
    query = parse_query(SQL, db)
    return SJoinEngine(db, query, spec, seed=seed)


def load_rows(engine):
    for row in R_ROWS:
        engine.insert("r", row)
    for row in S_ROWS:
        engine.insert("s", row)


def exact_weights(engine):
    """result -> weight over the engine's current plan results."""
    out = {}
    total = engine.total_results()
    seen = set()
    from repro.graph.join_number import map_join_number
    for number in range(total):
        result = map_join_number(engine.graph, 0, number)
        if result not in seen:
            seen.add(result)
            out[result] = engine.result_weight(result)
    assert sum(out.values()) == total
    return out


class TestWeightedFixedTargets:
    @pytest.mark.parametrize("seed_base", [0, 10_000, 20_000])
    def test_unit_counts_proportional_to_weight(self, seed_base):
        m, runs = 4, 500
        counts = Counter()
        targets = None
        for i in range(runs):
            engine = build_engine(
                SynopsisSpec.weighted_fixed_size(
                    m, weight_column="r.c2"),
                seed_base + i,
            )
            load_rows(engine)
            if targets is None:
                targets = exact_weights(engine)
            counts.update(engine.raw_samples())
        total_units = sum(targets.values())
        stat = 0.0
        for result, weight in targets.items():
            expected = runs * m * weight / total_units
            stat += (counts[result] - expected) ** 2 / expected
        # without-replacement unit sampling is *less* variable than the
        # multinomial this threshold assumes, so the bound is safe
        assert stat < chi_square_threshold(len(targets) - 1)


class TestWeightedReplacementTargets:
    @pytest.mark.parametrize("seed_base", [0, 10_000, 20_000])
    def test_iid_weight_proportional_after_deletions(self, seed_base):
        """Slots stay exactly i.i.d. weight-proportional even after
        deletions force replenishment (the §5.3 argument, carried over
        to the weighted unit domain)."""
        m, runs = 4, 500
        counts = Counter()
        targets = None
        for i in range(runs):
            engine = build_engine(
                SynopsisSpec.weighted_with_replacement(
                    m, weight_column="r.c2"),
                seed_base + i,
            )
            load_rows(engine)
            engine.delete("r", 4)   # drop the weight-4 hot tuple ...
            engine.delete("s", 0)
            engine.insert("r", (2, 6, 2))  # ... and add a fresh one
            if targets is None:
                targets = exact_weights(engine)
            counts.update(engine.raw_samples())
        total_units = sum(targets.values())
        stat = 0.0
        for result, weight in targets.items():
            expected = runs * m * weight / total_units
            stat += (counts[result] - expected) ** 2 / expected
        assert stat < chi_square_threshold(len(targets) - 1)


class TestSubsetTargets:
    @pytest.mark.parametrize("seed_base", [0, 10_000, 20_000])
    def test_inclusion_matches_exact_probability(self, seed_base):
        p, runs = 0.2, 500
        counts = Counter()
        targets = None
        for i in range(runs):
            engine = build_engine(
                SynopsisSpec.subset(p, weight_column="r.c2"),
                seed_base + i,
            )
            load_rows(engine)
            if targets is None:
                targets = exact_weights(engine)
            counts.update(set(engine.raw_samples()))
        stat = 0.0
        for result, weight in targets.items():
            pi = 1.0 - (1.0 - p) ** weight
            expected = runs * pi
            # binomial cells: variance runs * pi * (1 - pi)
            stat += ((counts[result] - expected) ** 2
                     / (runs * pi * (1.0 - pi)))
        assert stat < chi_square_threshold(len(targets))

    def test_no_duplicate_members(self):
        engine = build_engine(
            SynopsisSpec.subset(0.9, weight_column="r.c2"), seed=1)
        load_rows(engine)
        samples = engine.raw_samples()
        assert len(samples) == len(set(samples))

    def test_purge_only_deletion(self):
        engine = build_engine(
            SynopsisSpec.subset(0.9, weight_column="r.c2"), seed=3)
        load_rows(engine)
        engine.delete("r", 1)
        live = set(exact_weights(engine))
        assert set(engine.raw_samples()) <= live


WEIGHT1_PAIRS = [
    (SynopsisSpec.weighted_fixed_size(5), SynopsisSpec.fixed_size(5)),
    (SynopsisSpec.weighted_with_replacement(5),
     SynopsisSpec.with_replacement(5)),
    (SynopsisSpec.subset(0.3), SynopsisSpec.bernoulli(0.3)),
]


def drive(engine, batch_size):
    """A fixed insert/delete trajectory applied in ``batch_size``-op
    insert runs (deletes applied singly, at the same points)."""
    rng = random.Random(99)
    script = []
    for i in range(40):
        alias = "r" if rng.random() < 0.5 else "s"
        row = (rng.randrange(3), i, 1) if alias == "r" \
            else (rng.randrange(3), i)
        script.append((alias, row))
    for start in range(0, len(script), batch_size):
        engine.insert_run(script[start:start + batch_size])
    engine.delete("r", 0)
    engine.delete("s", 1)
    engine.insert_run([("r", (0, 99, 1)), ("s", (0, 99))])


class TestWeightOneIdentity:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 7, 40])
    @pytest.mark.parametrize(
        "weighted_spec,uniform_spec", WEIGHT1_PAIRS,
        ids=["fixed", "replacement", "subset"])
    def test_bit_identical_to_uniform(self, weighted_spec, uniform_spec,
                                      batch_size):
        """No weight column: every tuple weighs 1, and the weighted
        engine must replay the uniform engine's entire trajectory —
        samples, totals, and the future RNG stream."""
        weighted = build_engine(weighted_spec, seed=7)
        uniform = build_engine(uniform_spec, seed=7)
        drive(weighted, batch_size)
        drive(uniform, batch_size)
        assert weighted.raw_samples() == uniform.raw_samples()
        assert weighted.synopsis_results() == uniform.synopsis_results()
        assert weighted.total_results() == uniform.total_results()
        assert weighted.rng.getstate() == uniform.rng.getstate()

    @pytest.mark.parametrize("batch_size", [1, 3, 40])
    def test_all_ones_weight_column_identical(self, batch_size):
        """An explicit weight column whose values are all 1 must be
        indistinguishable from no weight column at all."""
        spec = SynopsisSpec.weighted_fixed_size(5, weight_column="r.c2")
        weighted = build_engine(spec, seed=7)
        uniform = build_engine(SynopsisSpec.fixed_size(5), seed=7)
        drive(weighted, batch_size)  # every r.c2 in the script is 1
        drive(uniform, batch_size)
        assert weighted.raw_samples() == uniform.raw_samples()
        assert weighted.rng.getstate() == uniform.rng.getstate()


class TestEngineMetadata:
    def test_entries_carry_exact_weights(self):
        engine = build_engine(
            SynopsisSpec.weighted_fixed_size(6, weight_column="r.c2"),
            seed=2)
        load_rows(engine)
        entries = engine.synopsis_entries()
        assert entries
        # r tids are assigned in R_ROWS insert order, so each sampled
        # result's weight must equal its r tuple's weight column
        r_weight = [row[2] for row in R_ROWS]
        for result, meta in entries:
            assert meta["weight"] == r_weight[result[0]]
            assert "inclusion_probability" not in meta
        raw = engine.raw_samples()
        for plan_result in raw:
            assert engine.result_weight(plan_result) >= 1

    def test_subset_entries_carry_inclusion_probability(self):
        p = 0.25
        engine = build_engine(
            SynopsisSpec.subset(p, weight_column="r.c2"), seed=2)
        load_rows(engine)
        entries = engine.synopsis_entries()
        assert entries
        for result, meta in entries:
            w = meta["weight"]
            assert meta["inclusion_probability"] == \
                pytest.approx(1.0 - (1.0 - p) ** w)

    def test_family_attribute(self):
        assert build_engine(
            SynopsisSpec.fixed_size(3), 0).family == "uniform"
        assert build_engine(
            SynopsisSpec.weighted_fixed_size(3), 0).family == "weighted"
        assert build_engine(
            SynopsisSpec.subset(0.5), 0).family == "subset"


class TestSpecValidation:
    def test_registry_contents(self):
        assert SYNOPSIS_FAMILIES["fixed"] == "uniform"
        assert SYNOPSIS_FAMILIES["fixed_replacement"] == "uniform"
        assert SYNOPSIS_FAMILIES["bernoulli"] == "uniform"
        assert SYNOPSIS_FAMILIES["weighted_fixed"] == "weighted"
        assert SYNOPSIS_FAMILIES["weighted_replacement"] == "weighted"
        assert SYNOPSIS_FAMILIES["subset"] == "subset"

    def test_unknown_kind_has_no_family(self):
        with pytest.raises(SynopsisError):
            family_of_kind("nope")

    def test_uniform_kind_rejects_weight_column(self):
        with pytest.raises(SynopsisError):
            SynopsisSpec("fixed", size=5, weight_column="r.c2")

    def test_malformed_weight_column_rejected(self):
        with pytest.raises(SynopsisError):
            SynopsisSpec.weighted_fixed_size(5, weight_column="noalias")

    def test_unknown_weight_alias_rejected_at_engine(self):
        with pytest.raises(SynopsisError):
            build_engine(
                SynopsisSpec.weighted_fixed_size(5, weight_column="z.c0"),
                seed=0)

    def test_nonpositive_weight_value_rejected(self):
        engine = build_engine(
            SynopsisSpec.weighted_fixed_size(5, weight_column="r.c2"),
            seed=0)
        with pytest.raises(SynopsisError):
            engine.insert("r", (0, 0, 0))
        with pytest.raises(SynopsisError):
            engine.insert("r", (0, 0, -2))

    def test_sj_baseline_rejects_non_uniform(self):
        db = Database()
        make_tables(db, [("r", 3), ("s", 2)])
        query = parse_query(SQL, db)
        for spec in (SynopsisSpec.weighted_fixed_size(5),
                     SynopsisSpec.subset(0.5)):
            with pytest.raises(SynopsisError):
                SymmetricJoinEngine(db, query, spec, seed=0)


class TestEffectiveSpec:
    def test_enlargement_preserves_family_and_weight_column(self):
        db = Database()
        make_tables(db, [("r", 3), ("s", 2)])
        parsed = parse_query(SQL, db)
        query = JoinQuery(
            parsed.range_tables, parsed.join_predicates,
            multi_filters=[MultiTableFilter(
                inputs=(("r", "c1"), ("s", "c1")),
                predicate=lambda x, y: x < y,
                selectivity_hint=0.25,
            )],
        )
        m = JoinSynopsisMaintainer(
            db, query,
            MaintainerConfig(
                spec=SynopsisSpec.weighted_fixed_size(
                    10, weight_column="r.c2"),
                seed=0,
            ),
        )
        assert m.engine.spec.size == 40
        assert m.engine.spec.kind == "weighted_fixed"
        assert m.engine.spec.weight_column == "r.c2"
        assert m.family == "weighted"

    def test_rate_based_kind_not_resized(self):
        db = Database()
        make_tables(db, [("r", 3), ("s", 2)])
        parsed = parse_query(SQL, db)
        query = JoinQuery(
            parsed.range_tables, parsed.join_predicates,
            multi_filters=[MultiTableFilter(
                inputs=(("r", "c1"), ("s", "c1")),
                predicate=lambda x, y: x < y,
                selectivity_hint=0.25,
            )],
        )
        m = JoinSynopsisMaintainer(
            db, query,
            MaintainerConfig(
                spec=SynopsisSpec.subset(0.5, weight_column="r.c2"),
                seed=0,
            ),
        )
        assert m.engine.spec.rate == 0.5
        assert m.engine.spec.weight_column == "r.c2"
