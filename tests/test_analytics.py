"""Analytics tests: histograms from synopses and aggregate estimators."""

import random

import pytest

from repro.analytics.estimators import (
    estimate_avg,
    estimate_count,
    estimate_sum,
)
from repro.analytics.histogram import (
    EquiDepthHistogram,
    histogram_deviation,
    sample_size_for_histogram,
)


class TestHistogram:
    def test_bucket_boundaries_are_quantiles(self):
        values = list(range(100))
        hist = EquiDepthHistogram.from_sample(values, 4)
        assert hist.boundaries == [24, 49, 74]

    def test_bucket_of(self):
        hist = EquiDepthHistogram([10, 20], buckets=3)
        assert hist.bucket_of(5) == 0
        assert hist.bucket_of(10) == 0   # boundary inclusive on the left
        assert hist.bucket_of(15) == 1
        assert hist.bucket_of(99) == 2

    def test_bucket_counts(self):
        hist = EquiDepthHistogram([10], buckets=2)
        assert hist.bucket_counts([1, 5, 11, 12]) == [2, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram.from_sample([], 3)
        with pytest.raises(ValueError):
            EquiDepthHistogram.from_sample([1], 0)

    def test_deviation_zero_for_exact_sample(self):
        population = list(range(1000))
        hist = EquiDepthHistogram.from_sample(population, 4)
        assert histogram_deviation(hist, population) < 0.01

    def test_cmn_guarantee_holds_in_practice(self):
        """A sample of size k*log(N)/f^2 gives deviation <= f/k whp —
        check the realised deviation on a skewed population."""
        rng = random.Random(7)
        population = [int(rng.expovariate(0.01)) for _ in range(20000)]
        k, f = 8, 0.5
        size = sample_size_for_histogram(k, len(population), f)
        sample = rng.sample(population, size)
        hist = EquiDepthHistogram.from_sample(sample, k)
        assert histogram_deviation(hist, population) <= f / k

    def test_sample_size_formula(self):
        assert sample_size_for_histogram(10, 1, 0.5) == 1
        big = sample_size_for_histogram(10, 10**6, 0.1)
        small = sample_size_for_histogram(10, 10**6, 0.5)
        assert big > small


class TestEstimators:
    def test_count_exact_on_full_sample(self):
        samples = list(range(100))
        est = estimate_count(samples, 100, lambda x: x < 25)
        assert est.value == 25

    def test_count_empty_sample(self):
        est = estimate_count([], 100, lambda x: True)
        assert est.stderr == float("inf")

    def test_count_confidence_interval_covers(self):
        rng = random.Random(1)
        population = [rng.randrange(10) for _ in range(5000)]
        truth = sum(1 for x in population if x < 3)
        covered = 0
        trials = 200
        for t in range(trials):
            rng2 = random.Random(t)
            sample = rng2.sample(population, 400)
            est = estimate_count(sample, len(population), lambda x: x < 3)
            lo, hi = est.interval()
            if lo <= truth <= hi:
                covered += 1
        assert covered / trials > 0.9

    def test_sum_unbiased(self):
        rng = random.Random(2)
        population = [rng.randrange(100) for _ in range(2000)]
        truth = sum(population)
        estimates = []
        for t in range(100):
            sample = random.Random(t).sample(population, 200)
            estimates.append(
                estimate_sum(sample, len(population), lambda x: x).value
            )
        mean = sum(estimates) / len(estimates)
        assert abs(mean - truth) / truth < 0.02

    def test_avg(self):
        est = estimate_avg([1, 2, 3, 4], lambda x: x)
        assert est.value == 2.5
        filtered = estimate_avg([1, 2, 3, 4], lambda x: x,
                                predicate=lambda x: x > 2)
        assert filtered.value == 3.5

    def test_avg_empty(self):
        est = estimate_avg([], lambda x: x)
        assert est.stderr == float("inf")

    def test_single_sample_zero_variance(self):
        est = estimate_sum([5], 10, lambda x: x)
        assert est.value == 50 and est.stderr == 0
