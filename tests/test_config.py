"""MaintainerConfig: the config-object construction path and its shims."""

import dataclasses
import warnings

import pytest

from repro import (
    ApplyResult,
    Column,
    Database,
    ENGINES,
    InvalidArgumentError,
    JoinSynopsisMaintainer,
    MaintainerConfig,
    SlidingWindowMaintainer,
    SynopsisError,
    SynopsisManager,
    SynopsisSpec,
    TableSchema,
)
from repro.persist import PersistentMaintainer, PersistentManager

SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


def feed(target):
    for a in range(4):
        target.insert("r", (a, a * 10))
        target.insert("s", (a, a * 100))
    return target


class TestConfigObject:
    def test_frozen_and_keyword_only(self):
        config = MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 4
        with pytest.raises(TypeError):
            MaintainerConfig(SynopsisSpec.fixed_size(10))

    def test_defaults(self):
        config = MaintainerConfig()
        assert config.engine == "sjoin-opt"
        assert config.engine in ENGINES
        assert config.spec is None and config.seed is None
        assert config.use_statistics is True

    def test_unknown_engine_rejected(self):
        with pytest.raises(SynopsisError, match="unknown engine"):
            MaintainerConfig(engine="btree-join")

    def test_replace(self):
        config = MaintainerConfig(seed=1)
        derived = config.replace(seed=9, engine="sjoin")
        assert (derived.seed, derived.engine) == (9, "sjoin")
        assert config.seed == 1  # original untouched


class TestEntryPointsAcceptConfig:
    """All four entry points take the one config object (acceptance)."""

    def config(self):
        return MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=5)

    def test_maintainer(self):
        m = feed(JoinSynopsisMaintainer(make_db(), SQL, self.config()))
        assert m.total_results() == 4
        assert m.config.seed == 5

    def test_manager(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=5))
        manager.register("q", SQL, self.config())
        feed(manager)
        assert manager.total_results("q") == 4

    def test_window(self):
        w = SlidingWindowMaintainer(
            make_db(), SQL, window=10.0, ts_columns={"r": "x"},
            config=self.config())
        w.insert("r", (1, 1))
        w.insert("s", (1, 100))
        assert w.total_results() == 1

    def test_persistent_maintainer(self, tmp_path):
        pm = PersistentMaintainer.create(
            make_db(), SQL, str(tmp_path / "state"), config=self.config())
        feed(pm)
        assert pm.total_results() == 4
        pm.close()

    def test_persistent_manager(self, tmp_path):
        pm = PersistentManager(
            SynopsisManager(make_db()), str(tmp_path / "state"))
        pm.register("q", SQL, self.config())
        feed(pm)
        assert pm.total_results("q") == 4
        pm.close()


class TestLegacyKwargShimRemoved:
    """The 1.x deprecation cycle is over: legacy construction keywords
    (``spec=``/``algorithm=``/``seed=``/...) fail like any misspelled
    keyword, and the config slot only accepts a MaintainerConfig."""

    def test_legacy_kwargs_raise_type_error(self):
        with pytest.raises(TypeError):
            JoinSynopsisMaintainer(
                make_db(), SQL, spec=SynopsisSpec.fixed_size(10), seed=5)

    def test_legacy_algorithm_kwarg_gone(self):
        with pytest.raises(TypeError):
            JoinSynopsisMaintainer(make_db(), SQL, algorithm="sjoin")
        m = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(engine="sjoin"))
        assert m.algorithm == "sjoin"
        assert m.config.engine == "sjoin"

    def test_positional_spec_rejected_with_guidance(self):
        with pytest.raises(InvalidArgumentError, match="spec"):
            JoinSynopsisMaintainer(
                make_db(), SQL, SynopsisSpec.fixed_size(10))

    def test_non_config_object_rejected(self):
        with pytest.raises(InvalidArgumentError, match="MaintainerConfig"):
            JoinSynopsisMaintainer(make_db(), SQL, {"seed": 5})

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="bufer_size"):
            JoinSynopsisMaintainer(make_db(), SQL, bufer_size=4)

    def test_config_path_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            JoinSynopsisMaintainer(
                make_db(), SQL, MaintainerConfig(seed=5))

    def test_manager_legacy_kwargs_gone(self):
        with pytest.raises(TypeError):
            SynopsisManager(make_db(), seed=0)
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=0))
        with pytest.raises(TypeError):
            manager.register("q", SQL, spec=SynopsisSpec.fixed_size(5))


class TestApplyResult:
    def test_typed_result(self):
        from repro.core.stats_api import DeleteOp, InsertOp

        m = feed(JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(seed=5)))
        result = m.apply([InsertOp("r", (9, 9)), DeleteOp("s", 0)])
        assert isinstance(result, ApplyResult)
        assert result.inserted == 1 and result.deleted == 1
        assert result.rejected == 0
        assert result.elapsed_ns > 0
        assert result.tids[1] is None

    def test_sequence_shim_deprecated(self):
        from repro.core.stats_api import InsertOp

        m = JoinSynopsisMaintainer(make_db(), SQL, MaintainerConfig(seed=5))
        result = m.apply([InsertOp("r", (1, 1))])
        with pytest.deprecated_call():
            assert len(result) == 1
        with pytest.deprecated_call():
            assert result[0] == result.tids[0]
        with pytest.deprecated_call():
            assert list(result) == list(result.tids)


class TestBatchResult:
    def test_apply_batch_returns_typed_batch_result(self):
        from repro.core.stats_api import BatchResult, DeleteOp, InsertOp

        m = feed(JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(seed=5)))
        result = m.apply_batch([InsertOp("r", (9, 9)), DeleteOp("s", 0)])
        assert isinstance(result, BatchResult)
        assert result.inserted == 1 and result.deleted == 1
        assert result.rejected == 0
        assert result.elapsed_ns > 0
        insert, delete = result.outcomes
        assert insert.kind == "insert" and insert.target == "r"
        assert insert.tid is not None and not insert.rejected
        assert delete.kind == "delete" and delete.target == "s"
        assert delete.tid == 0
        assert result.tids == (insert.tid, None)

    def test_outcome_and_result_fields_are_stable(self):
        from repro.core.stats_api import BatchResult, OpOutcome

        assert [f.name for f in dataclasses.fields(OpOutcome)] == \
            ["kind", "target", "tid", "rejected", "new_results"]
        assert [f.name for f in dataclasses.fields(BatchResult)] == \
            ["outcomes", "inserted", "deleted", "rejected", "elapsed_ns"]

    def test_to_apply_result_bridges_legacy_shape(self):
        from repro.core.stats_api import InsertOp

        m = JoinSynopsisMaintainer(make_db(), SQL, MaintainerConfig(seed=5))
        batch = m.apply_batch([InsertOp("r", (1, 1))])
        legacy = batch.to_apply_result()
        assert isinstance(legacy, ApplyResult)
        assert legacy.tids == batch.tids
        assert legacy.inserted == batch.inserted == 1

    def test_insert_many_shim_removed(self):
        m = JoinSynopsisMaintainer(make_db(), SQL, MaintainerConfig(seed=5))
        assert not hasattr(m, "insert_many")
