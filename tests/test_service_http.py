"""The JSON/HTTP front end: endpoints answer (correctly) during ingest."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import (
    Column,
    Database,
    InsertOp,
    JoinSynopsisMaintainer,
    MaintainerConfig,
    ServiceConfig,
    SynopsisService,
    SynopsisSpec,
    TableSchema,
)
from repro.service import LocalServiceClient, ServiceHTTPServer

SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def make_service(**config):
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    maintainer = JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(50),
                                  seed=7))
    return SynopsisService(maintainer, ServiceConfig(**config))


@pytest.fixture()
def served():
    service = make_service()
    server = ServiceHTTPServer(service, port=0).start()
    host, port = server.address
    yield service, f"http://{host}:{port}"
    server.stop()
    service.close()


def get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


def post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=10) as resp:
        return resp.status, json.loads(resp.read())


class TestEndpoints:
    def test_healthz(self, served):
        import repro

        service, base = served
        status, body = get(base + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queue_depth"] == 0
        # deployment satellite fields: version, uptime, active backend,
        # view staleness — and parity with the in-process client
        assert body["version"] == repro.__version__
        assert body["uptime_seconds"] >= 0.0
        assert body["index_backend"] == \
            service.target.engine.index_backend
        assert body["staleness_seconds"] >= 0.0
        local = LocalServiceClient(service).healthz()
        assert local["version"] == body["version"]
        assert local["index_backend"] == body["index_backend"]
        assert set(local) == set(body)

    def test_insert_then_synopsis(self, served):
        _, base = served
        status, body = post(base + "/insert",
                            {"table": "r", "row": [1, 10]})
        assert status == 200 and body["tid"] == 0
        post(base + "/insert", {"table": "s", "row": [1, 20]})
        status, body = get(base + "/synopsis")
        assert status == 200
        assert body["total_results"] == 1
        assert body["synopsis"] == [[0, 0]]
        status, body = get(base + "/synopsis?limit=0")
        assert body["synopsis"] == []

    def test_delete(self, served):
        _, base = served
        _, ins = post(base + "/insert", {"table": "r", "row": [1, 10]})
        status, body = post(base + "/delete",
                            {"table": "r", "tid": ins["tid"]})
        assert status == 200 and body["ok"] is True

    def test_stats(self, served):
        _, base = served
        post(base + "/insert", {"table": "r", "row": [1, 10]})
        status, body = get(base + "/stats")
        assert status == 200
        assert body["stats"]["algorithm"] == "sjoin-opt"
        assert body["service"]["applied_ops"] == 1

    def test_unknown_path_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(base + "/nope")
        assert err.value.code == 404

    def test_malformed_body_400(self, served):
        _, base = served
        for payload in ({"table": "r"}, {"table": "r", "row": 3}):
            with pytest.raises(urllib.error.HTTPError) as err:
                post(base + "/insert", payload)
            assert err.value.code == 400

    def test_domain_error_409(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post(base + "/delete", {"table": "r", "tid": 999})
        assert err.value.code == 409

    def test_closed_service_503(self, served):
        service, base = served
        service.close()
        with pytest.raises(urllib.error.HTTPError) as err:
            post(base + "/insert", {"table": "r", "row": [1, 1]})
        assert err.value.code == 503
        # reads still answer from the last published view
        status, _ = get(base + "/synopsis")
        assert status == 200

    def test_answers_during_ingest(self, served):
        """/synopsis and /healthz respond while writers stream inserts
        (the acceptance scenario)."""
        service, base = served
        stop = threading.Event()
        failures = []

        def writer():
            n = 0
            while not stop.is_set():
                service.submit([InsertOp("r", (n % 25, n)),
                                InsertOp("s", (n % 25, n))], wait=False)
                n += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                status, body = get(base + "/healthz")
                assert status == 200 and body["status"] == "ok"
                status, body = get(base + "/synopsis?limit=5")
                assert status == 200
                assert len(body["synopsis"]) <= 5
                assert body["total_results"] >= 0
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not failures


class TestLocalClientParity:
    def test_same_payload_shapes_as_http(self, served):
        service, base = served
        client = LocalServiceClient(service)
        assert client.insert("r", (1, 10)) == \
            {"tid": 0, "epoch": service.epoch}
        client.insert("s", (1, 20))
        _, http_synopsis = get(base + "/synopsis")
        assert client.synopsis() == http_synopsis
        _, http_stats = get(base + "/stats")
        local_stats = client.stats()
        assert local_stats["stats"] == http_stats["stats"]
        assert sorted(local_stats) == sorted(http_stats)
        local_health = client.healthz()
        http_health = get(base + "/healthz")[1]
        assert set(local_health) == set(http_health)
        for volatile in ("uptime_seconds", "staleness_seconds"):
            # wall-clock readings can't match exactly across two calls
            assert local_health.pop(volatile) >= 0.0
            assert http_health.pop(volatile) >= 0.0
        assert local_health == http_health

    def test_batch_insert_is_one_batch(self, served):
        from repro.core.stats_api import InsertOp

        service, _ = served
        result = service.apply_batch(
            [InsertOp("r", (k, 0)) for k in range(8)])
        assert list(result.tids) == list(range(8))
        assert service.service_metrics()["applied_batches"] == 1


class TestReviewRegressions:
    def test_negative_limit_400(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(base + "/synopsis?limit=-1")
        assert err.value.code == 400

    def test_synopsis_reply_reads_exactly_one_view(self, served):
        """The reply must come from a single captured view, never from
        per-field service reads that could straddle a publication."""
        service, base = served
        client = LocalServiceClient(service)
        service.insert("r", (1, 10))
        service.insert("s", (1, 20))

        def bomb(*args, **kwargs):
            raise AssertionError("reply re-read live service state")

        service.total_results = bomb
        service.synopsis = bomb
        body = client.synopsis(limit=5)
        assert body["total_results"] == 1
        assert body["synopsis"] == [[0, 0]]
        status, http_body = get(base + "/synopsis?limit=5")
        assert status == 200 and http_body == body
