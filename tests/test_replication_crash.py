"""Replication crash matrix.

Two failure domains, exercised exhaustively on small streams:

* **Follower crashes** — the tailer dies mid-replay at *every* record
  position (which by construction covers every segment boundary and
  every mid-segment point), both during the bootstrap tail and during
  steady-state tailing.  A restarted follower (fresh
  :class:`FollowerService` — followers keep no durable state) must land
  on an acked prefix, bit-identical to the leader at that LSN, with no
  record lost or applied twice.

* **Shipper crashes** — the ship pipeline dies between any two steps
  (segment bytes copied but manifest not flipped, torn tail bytes,
  stray snapshot temp files).  Followers trust only the manifest, so
  every such wreck must replay exactly the previously acked prefix.
"""

import copy
import json
import os
import random

import pytest

from repro import Database, SynopsisSpec
from repro.core.config import MaintainerConfig
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.persist import PersistentMaintainer
from repro.replicate import DirectoryTransport, FollowerService, WalShipper
from repro.replicate.transport import MANIFEST_NAME

from conftest import make_tables

SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0"


def make_leader(directory, seed=21, segment_max_bytes=512):
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
    maintainer = JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(32),
                                  seed=seed))
    return PersistentMaintainer(maintainer, str(directory),
                                segment_max_bytes=segment_max_bytes)


def fingerprint_of_leader(pm):
    return (tuple(tuple(r) for r in pm.synopsis()), pm.total_results(),
            pm.maintainer.engine.rng.getstate())


def fingerprint_of_follower(f):
    return (tuple(f.synopsis()), f.total_results(),
            f.target.engine.rng.getstate())


def drive_recording(pm, rng, n, live, fingerprints):
    """Drive n ops, recording the leader fingerprint at every LSN."""
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        if live[alias] and rng.random() < 0.35:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            pm.delete(alias, tid)
        else:
            tid = pm.insert(alias, (rng.randrange(8), rng.randrange(8)))
            if tid >= 0:
                live[alias].append(tid)
        fingerprints[pm.wal.next_lsn] = fingerprint_of_leader(pm)


class FollowerKilled(Exception):
    """Stands in for SIGKILL mid-replay; deliberately NOT a ReproError
    so nothing in the replication stack can swallow it."""


class CrashingFollower(FollowerService):
    """A follower whose replay dies after ``crash_after`` records."""

    def __init__(self, transport, crash_after, **kw):
        self.crash_after = crash_after
        self.killed = False
        try:
            super().__init__(transport, **kw)
        except FollowerKilled:
            # the "process" died mid-constructor-bootstrap; the object
            # survives here only so the test can inspect the wreck
            self.killed = True

    def _replay(self, entry):
        if self.crash_after == 0:
            raise FollowerKilled()
        self.crash_after -= 1
        return super()._replay(entry)


# ----------------------------------------------------------------------
# follower crash matrix
# ----------------------------------------------------------------------
class TestFollowerCrashMatrix:
    """Kill the tailer at every record position and restart it."""

    @pytest.fixture(scope="class")
    def shipped_stream(self, tmp_path_factory):
        """A leader stream of 80 ops shipped once, with the leader
        fingerprint recorded at every LSN.

        segment_max_bytes=512 rotates every handful of records, so
        crash positions 0..80 cover many segment boundaries and every
        mid-segment offset.
        """
        base = tmp_path_factory.mktemp("crash-matrix")
        pm = make_leader(base / "leader")
        fingerprints = {0: fingerprint_of_leader(pm)}
        live = {"r": [], "s": [], "t": []}
        drive_recording(pm, random.Random(2), 80, live, fingerprints)
        shipper = WalShipper(str(base / "leader"), str(base / "ship"))
        manifest = shipper.ship_once()
        n_segments = len(manifest["segments"])
        assert n_segments >= 5, "stream too small to exercise rotation"
        pm.close()
        return str(base / "ship"), fingerprints, manifest

    def test_crash_at_every_record_position(self, shipped_stream):
        ship_dir, fingerprints, manifest = shipped_stream
        acked = manifest["acked_lsn"]
        for crash_at in range(acked + 1):
            wreck = CrashingFollower(ship_dir, crash_at)
            if crash_at < acked:
                assert wreck.killed, crash_at
            # the wreck stopped exactly where it was killed: no record
            # beyond the crash point applied, none before it lost
            assert wreck.applied_lsn == crash_at
            if crash_at > 0:
                assert fingerprint_of_follower(wreck) == \
                    fingerprints[crash_at], \
                    f"wreck at {crash_at} is not the leader prefix"
            # restart: a fresh follower over the same transport
            restarted = FollowerService(ship_dir)
            assert restarted.applied_lsn == acked
            assert fingerprint_of_follower(restarted) == \
                fingerprints[acked], \
                f"restart after crash at {crash_at} diverged"

    def test_crashed_follower_can_resume_in_place(self, shipped_stream):
        """The cursor bookkeeping survives the crash: resuming the SAME
        instance replays only the missing suffix (no double apply)."""
        ship_dir, fingerprints, manifest = shipped_stream
        acked = manifest["acked_lsn"]
        for crash_at in (0, 1, acked // 3, acked // 2, acked - 1):
            wreck = CrashingFollower(ship_dir, crash_at)
            assert wreck.applied_lsn == crash_at
            wreck.crash_after = -1  # disarm
            applied = wreck.catch_up()
            assert applied == acked - crash_at
            assert wreck.applied_lsn == acked
            assert fingerprint_of_follower(wreck) == fingerprints[acked]

    def test_crash_during_steady_state_tail(self, tmp_path):
        """Same matrix, but the crash interrupts an incremental tail
        (cursors mid-segment) rather than the bootstrap tail."""
        pm = make_leader(tmp_path / "leader")
        fingerprints = {0: fingerprint_of_leader(pm)}
        live = {"r": [], "s": [], "t": []}
        drive_recording(pm, random.Random(3), 30, live, fingerprints)
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"))
        shipper.ship_once()
        for offset in range(1, 30, 3):
            follower = CrashingFollower(str(tmp_path / "ship"), -1)
            base = follower.applied_lsn
            assert base == pm.wal.next_lsn
            drive_recording(pm, random.Random(100 + offset), 30, live,
                            fingerprints)
            shipper.ship_once()
            follower.crash_after = offset
            with pytest.raises(FollowerKilled):
                follower.catch_up()
            crash_at = base + offset
            assert follower.applied_lsn == crash_at
            assert fingerprint_of_follower(follower) == \
                fingerprints[crash_at]
            # in-place resume AND fresh restart both converge
            follower.crash_after = -1
            follower.catch_up()
            assert fingerprint_of_follower(follower) == \
                fingerprints[pm.wal.next_lsn]
            restarted = FollowerService(str(tmp_path / "ship"))
            assert fingerprint_of_follower(restarted) == \
                fingerprints[pm.wal.next_lsn]
        pm.close()


# ----------------------------------------------------------------------
# shipper crash matrix
# ----------------------------------------------------------------------
def snapshot_ship_dir(ship_dir):
    """Capture the full shipped-directory state into memory."""
    state = {}
    for sub in ("wal", "snapshots"):
        directory = os.path.join(ship_dir, sub)
        for name in os.listdir(directory):
            with open(os.path.join(directory, name), "rb") as fh:
                state[f"{sub}/{name}"] = fh.read()
    with open(os.path.join(ship_dir, MANIFEST_NAME), "rb") as fh:
        state[MANIFEST_NAME] = fh.read()
    return state


def materialize_ship_dir(target, state):
    os.makedirs(os.path.join(target, "wal"), exist_ok=True)
    os.makedirs(os.path.join(target, "snapshots"), exist_ok=True)
    for rel, data in state.items():
        with open(os.path.join(target, rel), "wb") as fh:
            fh.write(data)
    return target


class TestShipperCrashMatrix:
    @pytest.fixture(scope="class")
    def ship_rounds(self, tmp_path_factory):
        """10 ship rounds of 10 ops each; the shipped-directory state
        and leader fingerprint captured at every round."""
        base = tmp_path_factory.mktemp("shipper-crash")
        pm = make_leader(base / "leader")
        fingerprints = {0: fingerprint_of_leader(pm)}
        live = {"r": [], "s": [], "t": []}
        shipper = WalShipper(str(base / "leader"), str(base / "ship"))
        rounds = []
        rng = random.Random(4)
        for round_no in range(10):
            drive_recording(pm, rng, 10, live, fingerprints)
            if round_no == 6:
                pm.checkpoint()
            manifest = shipper.ship_once()
            rounds.append((copy.deepcopy(manifest),
                           snapshot_ship_dir(str(base / "ship"))))
        pm.close()
        return rounds, fingerprints, str(base)

    def test_every_published_round_is_a_replayable_acked_prefix(
            self, ship_rounds, tmp_path):
        """A follower pointed at the wreck of ANY ship round lands
        exactly on that round's acked prefix, bit-identically."""
        rounds, fingerprints, _ = ship_rounds
        for i, (manifest, state) in enumerate(rounds):
            target = materialize_ship_dir(str(tmp_path / f"cut{i}"),
                                          state)
            f = FollowerService(target)
            assert f.applied_lsn == manifest["acked_lsn"]
            assert fingerprint_of_follower(f) == \
                fingerprints[manifest["acked_lsn"]]

    def test_torn_copy_beyond_manifest_is_never_replayed(
            self, ship_rounds, tmp_path):
        """Shipper died AFTER copying new segment bytes but BEFORE
        flipping the manifest: the follower replays only the old acked
        prefix — the acknowledged boundary, not the visible bytes."""
        rounds, fingerprints, _ = ship_rounds
        for i in range(len(rounds) - 1):
            old_manifest, old_state = rounds[i]
            _, new_state = rounds[i + 1]
            # new artifact bytes on disk, OLD manifest still published;
            # pruning happens after publication, so the wreck holds the
            # union of both rounds' files (new bytes win: shipped
            # segments are grow-only)
            wreck_state = dict(old_state)
            wreck_state.update(new_state)
            wreck_state[MANIFEST_NAME] = old_state[MANIFEST_NAME]
            # plus half-shipped junk: a torn tail on the newest segment
            # and a stray snapshot temp file
            newest_seg = max(name for name in wreck_state
                             if name.startswith("wal/"))
            wreck_state[newest_seg] += b"\xde\xad" * 11
            wreck_state["snapshots/snapshot-999.snap.tmp"] = b"half"
            target = materialize_ship_dir(
                str(tmp_path / f"torn{i}"), wreck_state)
            f = FollowerService(target)
            assert f.applied_lsn == old_manifest["acked_lsn"]
            assert fingerprint_of_follower(f) == \
                fingerprints[old_manifest["acked_lsn"]]
            # when the manifest finally flips, the follower advances
            # over those very bytes without re-bootstrapping
            materialize_ship_dir(target, {
                MANIFEST_NAME: new_state[MANIFEST_NAME]})
            bootstraps_before = f.bootstraps
            f.catch_up()
            new_manifest = rounds[i + 1][0]
            assert f.applied_lsn == new_manifest["acked_lsn"]
            assert fingerprint_of_follower(f) == \
                fingerprints[new_manifest["acked_lsn"]]
            if new_manifest["snapshot"] == old_manifest["snapshot"]:
                assert f.bootstraps == bootstraps_before

    def test_interrupted_transport_round_keeps_old_prefix(self,
                                                          tmp_path):
        """Kill the transport mid-round at every put operation: until
        publish_manifest succeeds, followers replay the old prefix."""

        class TransportKilled(Exception):
            pass

        class FlakyTransport(DirectoryTransport):
            puts_until_crash = -1

            def _maybe_crash(self):
                if self.puts_until_crash == 0:
                    raise TransportKilled()
                if self.puts_until_crash > 0:
                    self.puts_until_crash -= 1

            def put_segment_bytes(self, name, offset, data):
                self._maybe_crash()
                super().put_segment_bytes(name, offset, data)

            def put_snapshot(self, name, data):
                self._maybe_crash()
                super().put_snapshot(name, data)

            def publish_manifest(self, manifest):
                self._maybe_crash()
                super().publish_manifest(manifest)

        pm = make_leader(tmp_path / "leader")
        fingerprints = {0: fingerprint_of_leader(pm)}
        live = {"r": [], "s": [], "t": []}
        transport = FlakyTransport(str(tmp_path / "ship"))
        drive_recording(pm, random.Random(6), 25, live, fingerprints)
        WalShipper(str(tmp_path / "leader"), transport).ship_once()
        old_acked = transport.read_manifest()["acked_lsn"]
        drive_recording(pm, random.Random(7), 25, live, fingerprints)
        crash_at = 0
        while True:
            transport.puts_until_crash = crash_at
            # a fresh shipper each time: the crashed one is "dead"
            shipper = WalShipper(str(tmp_path / "leader"), transport)
            try:
                shipper.ship_once()
                transport.puts_until_crash = -1
                break  # the round completed: every put got through
            except TransportKilled:
                pass
            f = FollowerService(str(tmp_path / "ship"))
            assert f.applied_lsn == old_acked, \
                f"transport crash at put #{crash_at} leaked state"
            assert fingerprint_of_follower(f) == fingerprints[old_acked]
            crash_at += 1
        assert crash_at >= 1  # the matrix actually exercised crashes
        f = FollowerService(str(tmp_path / "ship"))
        assert f.applied_lsn == pm.wal.next_lsn
        assert fingerprint_of_follower(f) == \
            fingerprints[pm.wal.next_lsn]
        pm.close()

    def test_manifest_pointing_at_vanished_snapshot_is_loud(
            self, ship_rounds, tmp_path):
        """A wreck that lost its snapshot file cannot silently serve an
        empty synopsis: bootstrap fails loudly and retries later."""
        from repro.errors import ReplicationError

        rounds, _, _ = ship_rounds
        manifest, state = rounds[0]
        state = {rel: data for rel, data in state.items()
                 if not rel.startswith("snapshots/")}
        target = materialize_ship_dir(str(tmp_path / "lost"), state)
        with pytest.raises(ReplicationError, match="missing"):
            FollowerService(target)

    def test_corrupt_shipped_snapshot_refuses_bootstrap(
            self, ship_rounds, tmp_path):
        from repro.errors import ReplicationError

        rounds, _, _ = ship_rounds
        manifest, state = rounds[0]
        name = "snapshots/" + manifest["snapshot"]["name"]
        state = dict(state)
        state[name] = state[name][:-3] + bytes(
            b ^ 0xFF for b in state[name][-3:])
        target = materialize_ship_dir(str(tmp_path / "corrupt"), state)
        with pytest.raises(ReplicationError, match="validation"):
            FollowerService(target)

    def test_manifest_is_json_and_versioned(self, ship_rounds):
        """The wire format itself is a contract: manifests must parse as
        plain JSON with the documented keys (ops tooling reads them)."""
        rounds, _, _ = ship_rounds
        for manifest, state in rounds:
            parsed = json.loads(state[MANIFEST_NAME])
            assert parsed == manifest
            assert set(parsed) == {"version", "ship_seq", "shipped_at",
                                   "acked_lsn", "snapshot", "segments",
                                   "watermarks"}
            for seg in parsed["segments"]:
                assert set(seg) == {"name", "start_lsn", "size",
                                    "records"}
            for mark in parsed["watermarks"]:
                assert set(mark) == {"lsn", "shipped_at", "appended_at"}
