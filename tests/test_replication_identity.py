"""Leader/follower differential identity.

The replication design claim (mirroring the paper's determinism
argument): logical replay from a shipped snapshot reproduces the
leader's state *bit-identically* — not just the same sample
distribution, the very same synopsis rows AND the very same RNG stream.
So at every matched epoch (follower ``applied_lsn`` == leader WAL
position) the two sides must agree exactly.

The suite drives >= 10_000 operations through a persistent leader,
ships continuously, and checks identity at every matched epoch; plus a
staleness-bound property under paused shipping (injectable clocks) and
a multi-follower fan-out test.
"""

import random

from repro import Database, SynopsisSpec
from repro.core.config import MaintainerConfig
from repro.core.manager import SynopsisManager
from repro.persist import PersistentMaintainer, PersistentManager
from repro.replicate import FollowerService, WalShipper

from conftest import make_tables

SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0"


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
    return db


def make_leader(directory, seed=7, segment_max_bytes=4096):
    from repro.core.maintainer import JoinSynopsisMaintainer

    maintainer = JoinSynopsisMaintainer(
        make_db(), SQL,
        MaintainerConfig(spec=SynopsisSpec.fixed_size(64), seed=seed))
    return PersistentMaintainer(maintainer, str(directory),
                                segment_max_bytes=segment_max_bytes)


def leader_fingerprint(pm):
    """Everything that must be bit-identical on a follower at this LSN."""
    return {
        "lsn": pm.wal.next_lsn,
        "synopsis": [tuple(r) for r in pm.synopsis()],
        "total": pm.total_results(),
        "rng": pm.maintainer.engine.rng.getstate(),
    }


def follower_fingerprint(f):
    return {
        "lsn": f.applied_lsn,
        "synopsis": f.synopsis(),
        "total": f.total_results(),
        "rng": f.target.engine.rng.getstate(),
    }


def drive(pm, rng, n, live, domain=8):
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        if live[alias] and rng.random() < 0.35:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            pm.delete(alias, tid)
        else:
            tid = pm.insert(
                alias, (rng.randrange(domain), rng.randrange(domain)))
            if tid >= 0:
                live[alias].append(tid)


def test_differential_identity_over_10k_ops(tmp_path):
    """>= 10k ops; at EVERY matched epoch the follower is bit-identical
    to the leader: same synopsis rows, same totals, same RNG stream."""
    pm = make_leader(tmp_path / "leader")
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"))
    shipper.ship_once()
    follower = FollowerService(str(tmp_path / "ship"))

    rng = random.Random(1234)
    live = {"r": [], "s": [], "t": []}
    total_ops = 0
    matched_epochs = 0
    rng_states_seen = []
    for round_no in range(100):
        drive(pm, rng, 100, live)
        total_ops += 100
        # exercise checkpoints (leader snapshot + WAL truncation) at
        # irregular points so follower re-bootstrap paths run too
        if round_no in (17, 54, 81):
            pm.checkpoint()
        shipper.ship_once()
        want = leader_fingerprint(pm)
        follower.catch_up()
        got = follower_fingerprint(follower)
        # the leader is quiescent between drive() calls, so this IS a
        # matched epoch: applied_lsn must equal the leader WAL position
        assert got["lsn"] == want["lsn"]
        assert got["synopsis"] == want["synopsis"], \
            f"synopsis diverged at epoch {want['lsn']}"
        assert got["total"] == want["total"]
        assert got["rng"] == want["rng"], \
            f"RNG stream diverged at epoch {want['lsn']}"
        matched_epochs += 1
        rng_states_seen.append(got["rng"])
    assert total_ops >= 10_000
    assert matched_epochs == 100
    # the RNG stream really advanced (the identity is not vacuous)
    assert len({state[1] for state in rng_states_seen}) > 1
    # a leader checkpoint pruned segments past the follower at least
    # once, forcing the re-bootstrap path — make sure it actually ran
    assert follower.bootstraps >= 2
    follower.stop()
    pm.close()


def test_identity_survives_follower_restart_mid_stream(tmp_path):
    """A replacement follower (fresh bootstrap) reaches the same
    bit-identical state as one that tailed the whole stream."""
    pm = make_leader(tmp_path / "leader")
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"))
    rng = random.Random(99)
    live = {"r": [], "s": [], "t": []}
    drive(pm, rng, 300, live)
    shipper.ship_once()
    veteran = FollowerService(str(tmp_path / "ship"))
    drive(pm, rng, 300, live)
    shipper.ship_once()
    veteran.catch_up()
    # a "restarted" follower: no state carried over, fresh bootstrap
    replacement = FollowerService(str(tmp_path / "ship"))
    assert follower_fingerprint(replacement) == \
        follower_fingerprint(veteran)
    assert follower_fingerprint(replacement) == leader_fingerprint(pm)
    pm.close()


def test_multi_follower_fan_out_converges(tmp_path):
    """N followers over one shipped directory all converge to the same
    bit-identical state, joining at different points in the stream."""
    pm = make_leader(tmp_path / "leader")
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"))
    rng = random.Random(7)
    live = {"r": [], "s": [], "t": []}
    followers = []
    for round_no in range(4):
        drive(pm, rng, 150, live)
        if round_no == 2:
            pm.checkpoint()
        shipper.ship_once()
        # a new follower joins after every round: each bootstraps from a
        # different shipped snapshot/LSN position
        followers.append(FollowerService(str(tmp_path / "ship")))
        for f in followers:
            f.catch_up()
    want = leader_fingerprint(pm)
    for f in followers:
        assert follower_fingerprint(f) == want
    # and they serve identical views
    payloads = [f.synopsis_payload() for f in followers]
    assert all(p == payloads[0] for p in payloads)
    pm.close()


def test_manager_state_replicates(tmp_path):
    """Replication is kind-agnostic: a PersistentManager (multi-query)
    leader ships and replays just the same."""
    manager = SynopsisManager(make_db())
    pm = PersistentManager(manager, str(tmp_path / "leader"),
                           segment_max_bytes=4096)
    pm.register("q1", SQL)
    pm.register("q2", "SELECT * FROM r, s WHERE r.c1 = s.c1")
    rng = random.Random(3)
    for _ in range(200):
        table = rng.choice(["r", "s", "t"])
        pm.insert(table, (rng.randrange(8), rng.randrange(8)))
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"))
    shipper.ship_once()
    f = FollowerService(str(tmp_path / "ship"))
    assert f.applied_lsn == pm.wal.next_lsn
    for name in ("q1", "q2"):
        assert f.synopsis(name) == [tuple(r) for r in pm.synopsis(name)]
        assert f.total_results(name) == pm.total_results(name)
    # a follower serves the manager read surface too
    payload = f.synopsis_payload("q1")
    assert payload["total_results"] == pm.total_results("q1")
    pm.close()


def test_staleness_bound_under_paused_shipping(tmp_path):
    """Property: with shipping paused, a follower's reported staleness
    equals exactly (now - last ship time) and its epoch never moves —
    it serves a consistent (if stale) prefix, never a torn one."""
    now = [1_000.0]
    clock = lambda: now[0]  # noqa: E731
    pm = make_leader(tmp_path / "leader")
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"),
                         clock=clock)
    rng = random.Random(5)
    live = {"r": [], "s": [], "t": []}
    drive(pm, rng, 100, live)
    shipper.ship_once()
    f = FollowerService(str(tmp_path / "ship"), clock=clock)
    frozen = follower_fingerprint(f)

    # shipping pauses while the leader keeps writing
    for step in range(1, 6):
        drive(pm, rng, 50, live)
        now[0] = 1_000.0 + step * 60.0
        f.catch_up()  # polls, finds the same old manifest
        body = f.healthz()
        assert body["staleness_seconds"] == step * 60.0
        assert body["applied_lsn"] == frozen["lsn"]
        assert follower_fingerprint(f) == frozen  # stale, not torn
    # epoch lag is invisible until a manifest advertises the new
    # records; staleness is the signal that covers this window
    assert f.healthz()["epoch_lag"] == 0

    # shipping resumes: staleness collapses, identity is restored
    now[0] = 2_000.0
    shipper.ship_once()
    f.catch_up()
    assert f.healthz()["staleness_seconds"] == 0.0
    assert follower_fingerprint(f) == leader_fingerprint(pm)
    pm.close()


def test_paused_follower_epoch_lag_grows_then_clears(tmp_path):
    """Complement of the staleness test: the SHIPPER is live but the
    follower stops polling; epoch_lag measures the acked-but-unapplied
    backlog and drains to zero on the next catch_up."""
    pm = make_leader(tmp_path / "leader")
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"))
    rng = random.Random(11)
    live = {"r": [], "s": [], "t": []}
    drive(pm, rng, 60, live)
    shipper.ship_once()
    f = FollowerService(str(tmp_path / "ship"))
    base_lsn = f.applied_lsn
    drive(pm, rng, 40, live)
    shipper.ship_once()
    # follower paused: manually refresh just its manifest knowledge the
    # way a healthz-only poller would see the world
    f._manifest = f.transport.read_manifest()
    body = f.healthz()
    assert body["epoch_lag"] == 40
    assert body["applied_lsn"] == base_lsn
    applied = f.catch_up()
    assert applied == 40
    assert f.healthz()["epoch_lag"] == 0
    assert follower_fingerprint(f) == leader_fingerprint(pm)
    pm.close()


def test_follower_scrape_exposes_quality_and_lag_series(tmp_path):
    """One leader→follower hop, scraped over HTTP: the replica's
    /metrics exposition carries both the follower-side quality gauges
    and the per-role replication-lag histogram, alongside identity."""
    import urllib.request

    from repro.obs.metrics import MetricsRegistry
    from repro.service import ServiceHTTPServer

    pm = make_leader(tmp_path / "leader")
    rng = random.Random(17)
    live = {"r": [], "s": [], "t": []}
    drive(pm, rng, 200, live)
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"))
    shipper.ship_once()
    f = FollowerService(str(tmp_path / "ship"),
                        obs=MetricsRegistry(), quality=True)
    try:
        with ServiceHTTPServer(f, port=0) as server:
            host, port = server.address
            text = urllib.request.urlopen(
                f"http://{host}:{port}/metrics").read().decode()
        # per-role lag histogram, one sample per replayed record
        assert 'repro_replicate_lag_ms_bucket{role="follower",le=' in text
        assert (f'repro_replicate_lag_ms_count{{role="follower"}} '
                f'{f.lag_samples}') in text
        assert f.lag_samples == f.replayed_records > 0
        # the replica probes its own restored engine for uniformity
        assert "repro_quality_probe_rounds" in text
        assert "repro_quality_chi_square" in text
        assert "repro_quality_flagged 0" in text  # honest replica: quiet
        assert follower_fingerprint(f) == leader_fingerprint(pm)
    finally:
        f.stop()
        pm.close()
