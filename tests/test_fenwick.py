"""Fenwick arena backend tests: the skip-list's model-based checks, plus
arena-specific coverage (pending buffer, tombstones, compaction)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JoinExecutor, SJoinEngine, SynopsisSpec
from repro.index.avl import AggregateTree, IndexRange
from repro.index.fenwick import FenwickArena
from repro.query.intervals import Interval

from conftest import random_query, random_row


class Item:
    def __init__(self, values):
        self.values = list(values)


def value_of(item, slot):
    return item.values[slot]


class TestUnit:
    def test_empty(self):
        fa = FenwickArena(1, value_of)
        assert len(fa) == 0
        assert fa.total(0) == 0
        assert fa.select(0, 0) is None
        assert list(fa.iter_items()) == []

    def test_insert_total_order(self):
        fa = FenwickArena(1, value_of)
        for v in (3, 1, 4, 1, 5):
            fa.insert((v,), Item([v]))
        assert fa.total(0) == 14
        assert [i.values[0] for i in fa.iter_items()] == [1, 1, 3, 4, 5]
        fa.check_invariants()

    def test_refresh(self):
        fa = FenwickArena(1, value_of)
        item = Item([5])
        node = fa.insert((1,), item)
        fa.insert((2,), Item([10]))
        item.values[0] = 50
        fa.refresh(node)
        assert fa.total(0) == 60
        fa.check_invariants()

    def test_delete_by_handle(self):
        fa = FenwickArena(1, value_of)
        nodes = [fa.insert((v,), Item([v])) for v in range(20)]
        rng = random.Random(4)
        order = list(range(20))
        rng.shuffle(order)
        total = sum(range(20))
        for pos in order:
            fa.delete(nodes[pos])
            total -= pos
            assert fa.total(0) == total
            fa.check_invariants()

    def test_find(self):
        fa = FenwickArena(0, value_of)
        fa.insert((2,), "two")
        fa.insert((7,), "seven")
        assert fa.find((7,)).item == "seven"
        assert fa.find((3,)) is None

    def test_select_and_prefix(self):
        fa = FenwickArena(1, value_of)
        nodes = [fa.insert((v,), Item([v + 1])) for v in range(10)]
        item, prefix = fa.select(0, 0)
        assert item.values[0] == 1 and prefix == 0
        item, prefix = fa.select(0, 1)
        assert item.values[0] == 2 and prefix == 1
        for k, node in enumerate(nodes):
            assert fa.prefix_sum(0, node) == sum(range(1, k + 2))

    def test_range_queries(self):
        fa = FenwickArena(1, value_of)
        for a in range(3):
            for b in range(4):
                fa.insert((a, b), Item([1]))
        rng = IndexRange((1,), Interval(1, 2))
        assert fa.range_sum(0, rng) == 2
        assert [n.key for n in fa.iter_nodes(rng)] == [(1, 1), (1, 2)]

    def test_double_delete_raises(self):
        fa = FenwickArena(1, value_of)
        node = fa.insert((1,), Item([1]))
        fa.insert((2,), Item([2]))
        fa.delete(node)
        with pytest.raises(KeyError):
            fa.delete(node)
        with pytest.raises(KeyError):
            fa.refresh(node)

    def test_compaction_absorbs_pending_and_tombstones(self):
        """Enough churn forces compaction: pending drains into the arena,
        tombstones vanish, and the structural-work counter advances."""
        fa = FenwickArena(1, value_of)
        rng = random.Random(11)
        nodes = []
        for i in range(400):
            nodes.append(fa.insert((rng.randrange(50),), Item([i])))
        rng.shuffle(nodes)
        for node in nodes[:300]:
            fa.delete(node)
        fa.check_invariants()
        assert len(fa) == 100
        assert fa.maintenance_ops > 0
        assert fa.total(0) == sum(n.item.values[0] for n in nodes[300:])

    def test_find_never_returns_tombstone(self):
        fa = FenwickArena(1, value_of)
        keep = fa.insert((5,), Item([1]))
        drop = fa.insert((5,), Item([2]))
        # push both into the arena so the delete leaves a tombstone
        for v in range(100):
            fa.insert((v + 100,), Item([1]))
        fa.delete(drop)
        found = fa.find((5,))
        assert found is keep
        fa.check_invariants()

    def test_select_skips_zero_weight_entries(self):
        fa = FenwickArena(1, value_of)
        fa.insert((1,), Item([0]))
        mid = fa.insert((2,), Item([3]))
        fa.insert((3,), Item([0]))
        assert fa.select(0, 0)[0] is mid.item
        assert fa.select(0, 2)[0] is mid.item
        assert fa.select(0, 3) is None


# ----------------------------------------------------------------------
# model-based equivalence with the AVL backend
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "change"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1, max_size=100,
)

range_strategy = st.tuples(
    st.integers(min_value=-1, max_value=16),
    st.integers(min_value=-1, max_value=16),
    st.booleans(), st.booleans(),
)


@settings(max_examples=80, deadline=None)
@given(ops_strategy, range_strategy, st.integers(0, 150))
def test_fenwick_agrees_with_avl(ops, rng_spec, target):
    """Both backends run the same operation script; every query must
    agree (the AVL is itself validated against the brute-force model)."""
    avl = AggregateTree(1, value_of)
    fa = FenwickArena(1, value_of)
    handles = []  # (avl node, fenwick node, item)
    next_tie = 0
    for op, key, value in ops:
        if op == "insert" or not handles:
            item = Item([value])
            handles.append((
                avl.insert((key,), item, tie=next_tie),
                fa.insert((key,), item, tie=next_tie),
                item,
            ))
            next_tie += 1
        elif op == "delete":
            idx = (key * 7 + value) % len(handles)
            a, f, _ = handles.pop(idx)
            avl.delete(a)
            fa.delete(f)
        else:
            idx = (key * 5 + value) % len(handles)
            a, f, item = handles[idx]
            item.values[0] = value
            avl.refresh(a)
            fa.refresh(f)
    fa.check_invariants()
    assert len(fa) == len(avl)
    assert fa.total(0) == avl.total(0)
    lo, hi, lo_open, hi_open = rng_spec
    rng = IndexRange((), Interval(lo, hi, lo_open, hi_open))
    assert fa.range_sum(0, rng) == avl.range_sum(0, rng)
    assert [n.tie for n in fa.iter_nodes(rng)] == \
        [n.tie for n in avl.iter_nodes(rng)]
    got_fa = fa.select(0, target, rng)
    got_avl = avl.select(0, target, rng)
    if got_avl is None:
        assert got_fa is None
    else:
        assert got_fa == got_avl
    for a, f, _ in handles:
        assert fa.prefix_sum(0, f) == avl.prefix_sum(0, a)
        assert fa.prefix_sum(0, f, inclusive=False) == \
            avl.prefix_sum(0, a, inclusive=False)


# ----------------------------------------------------------------------
# engine-level equivalence
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_engine_on_fenwick_matches_exact(seed):
    rng = random.Random(seed)
    db, query = random_query(rng, 3)
    engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(6),
                         seed=seed, index_backend="fenwick")
    live = {alias: [] for alias in query.aliases}
    for _ in range(50):
        if rng.random() < 0.3 and any(live.values()):
            alias = rng.choice([a for a in live if live[a]])
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            engine.delete(alias, tid)
        else:
            alias = rng.choice(list(query.aliases))
            ncols = len(
                db.table(query.range_table(alias).table_name)
                .schema.columns
            )
            tid = engine.insert(alias, random_row(rng, ncols, 4))
            live[alias].append(tid)
    exact = set(JoinExecutor(db, query, include_filters=False,
                             include_residual=False).results())
    assert engine.total_results() == len(exact)
    assert set(engine.raw_samples()) <= exact
    assert len(engine.raw_samples()) == min(6, len(exact))
    engine.graph.check_invariants()
