"""Data generator tests: structural invariants the workloads rely on."""

from collections import Counter

import pytest

from repro.datagen.linear_road import (
    LinearRoadConfig,
    LinearRoadGenerator,
    qb_sql,
    setup_qb,
)
from repro.datagen.tpcds import TpcdsGenerator, TpcdsScale, setup_query
from repro.datagen.workload import (
    DeleteOldest,
    Insert,
    StreamPlayer,
    count_operations,
    interleave_deletions,
)
from repro.errors import ReproError


class TestTpcdsGenerator:
    def test_row_counts_match_scale(self):
        scale = TpcdsScale.tiny()
        data = TpcdsGenerator(scale, seed=1).generate()
        assert len(data.date_dim) == scale.dates
        assert len(data.household_demographics) == scale.demographics
        assert len(data.item) == scale.items
        assert len(data.customer) == scale.customers
        assert len(data.store_sales) == scale.store_sales
        assert len(data.catalog_sales) == scale.catalog_sales

    def test_primary_keys_unique(self):
        data = TpcdsGenerator(TpcdsScale.tiny(), seed=2).generate()
        tickets = [(r[0], r[1]) for r in data.store_sales]
        assert len(set(tickets)) == len(tickets)
        assert len({r[0] for r in data.customer}) == len(data.customer)

    def test_returns_reference_existing_sales(self):
        data = TpcdsGenerator(TpcdsScale.tiny(), seed=3).generate()
        sale_keys = {(r[0], r[1]) for r in data.store_sales}
        for ret in data.store_returns:
            assert (ret[0], ret[1]) in sale_keys

    def test_foreign_keys_in_domain(self):
        scale = TpcdsScale.tiny()
        data = TpcdsGenerator(scale, seed=4).generate()
        for row in data.customer:
            assert 0 <= row[1] < scale.demographics
        for row in data.store_sales:
            assert 0 <= row[0] < scale.items
            assert 0 <= row[2] < scale.customers
            assert 0 <= row[3] < scale.dates

    def test_customer_skew_present(self):
        data = TpcdsGenerator(TpcdsScale.small(), seed=5).generate()
        counts = Counter(r[2] for r in data.store_sales)
        popular = counts.most_common(1)[0][1]
        assert popular > 3 * len(data.store_sales) / len(counts)

    def test_deterministic_given_seed(self):
        a = TpcdsGenerator(TpcdsScale.tiny(), seed=9).generate()
        b = TpcdsGenerator(TpcdsScale.tiny(), seed=9).generate()
        assert a.store_sales == b.store_sales


class TestQuerySetups:
    @pytest.mark.parametrize("name,n_aliases", [
        ("QX", 5), ("QY", 5), ("QZ", 7), ("qx", 5),
    ])
    def test_setup_builds(self, name, n_aliases):
        setup = setup_query(name, TpcdsScale.tiny(), seed=0)
        from repro.query.parser import parse_query
        q = parse_query(setup.sql, setup.db)
        assert q.num_tables == n_aliases

    def test_unknown_query_rejected(self):
        with pytest.raises(ReproError):
            setup_query("QQ")

    def test_fk_safety_of_streams(self):
        """Replaying preload+stream through a plain FK-checking consumer
        must never reference a missing parent."""
        for name in ("QX", "QY", "QZ"):
            setup = setup_query(name, TpcdsScale.tiny(), seed=1)
            seen = {}
            for event in setup.preload + setup.stream:
                seen.setdefault(event.alias, set())
            for event in setup.preload + setup.stream:
                row = event.row
                if event.alias == "ss" and name in ("QY", "QZ"):
                    assert row[2] in seen["c1"], "sale before its customer"
                if event.alias == "sr":
                    assert (row[0], row[1]) in seen["ss"], \
                        "return before its sale"
                if event.alias == "ss":
                    seen["ss"].add((row[0], row[1]))
                elif event.alias == "c1":
                    seen["c1"].add(row[0])
                else:
                    seen[event.alias].add(row[0])

    def test_streamed_aliases_declared(self):
        setup = setup_query("QY", TpcdsScale.tiny(), seed=0)
        stream_aliases = {e.alias for e in setup.stream}
        assert stream_aliases == set(setup.streamed_aliases)


class TestLinearRoad:
    def test_event_structure(self):
        cfg = LinearRoadConfig.tiny()
        events = LinearRoadGenerator(cfg, seed=0).events()
        inserts = [e for e in events if isinstance(e, Insert)]
        deletes = [e for e in events if isinstance(e, DeleteOldest)]
        assert len(inserts) == cfg.lanes * cfg.cars_per_lane * cfg.ticks
        assert len(deletes) == cfg.lanes * (cfg.ticks - cfg.window)

    def test_sliding_window_size(self):
        """After the full stream, each lane holds window*cars reports."""
        cfg = LinearRoadConfig.tiny()
        setup = setup_qb(5, cfg, seed=0)

        class CountingEngine:
            def __init__(self, db):
                self.db = db

            def insert(self, alias, row):
                return self.db.insert(f"lane{alias[-1]}", row)

            def delete(self, alias, tid):
                self.db.delete(f"lane{alias[-1]}", tid)

        engine = CountingEngine(setup.db)
        StreamPlayer(engine).run(setup.events)
        for lane in range(cfg.lanes):
            assert len(setup.db.table(f"lane{lane + 1}")) == \
                cfg.window * cfg.cars_per_lane

    def test_positions_in_range(self):
        cfg = LinearRoadConfig.tiny()
        for event in LinearRoadGenerator(cfg, seed=1).events():
            if isinstance(event, Insert):
                assert 0 <= event.row[1] < cfg.road_length

    def test_qb_sql_width(self):
        sql = qb_sql(123)
        assert "<= 123" in sql
        assert sql.count("|") == 4


class TestWorkloadTools:
    def test_count_operations(self):
        events = [Insert("a", (1,)), DeleteOldest("a", 3), Insert("a", (2,))]
        assert count_operations(events) == 5

    def test_interleave_deletions(self):
        inserts = [Insert("a", (i,)) for i in range(10)]
        events = interleave_deletions(
            inserts, delete_every={"a": 3}, delete_count={"a": 2}
        )
        deletes = [e for e in events if isinstance(e, DeleteOldest)]
        assert len(deletes) == 3
        # first delete comes right after the 3rd insert
        assert isinstance(events[3], DeleteOldest)

    def test_player_fifo_semantics(self):
        class Recorder:
            def __init__(self):
                self.deleted = []
                self.next = 0

            def insert(self, alias, row):
                tid = self.next
                self.next += 1
                return tid

            def delete(self, alias, tid):
                self.deleted.append(tid)

        rec = Recorder()
        player = StreamPlayer(rec)
        player.run([Insert("a", (i,)) for i in range(4)])
        player.apply(DeleteOldest("a", 2))
        assert rec.deleted == [0, 1]
        assert player.live_count("a") == 2

    def test_player_skips_filtered_inserts(self):
        class Rejecting:
            def insert(self, alias, row):
                return -1

            def delete(self, alias, tid):  # pragma: no cover
                raise AssertionError("nothing to delete")

        player = StreamPlayer(Rejecting())
        player.apply(Insert("a", (1,)))
        assert player.apply(DeleteOldest("a", 1)) == 0
