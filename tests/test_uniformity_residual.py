"""Uniformity of the residual-filtered synopsis (cyclic queries, §5.1).

For a cyclic query, the demoted edge is applied as a filter on top of the
synopsis.  Filtering a uniform sample uniformly thins it, so the returned
(filtered) synopsis must be a uniform sample of the *filtered* result set
— checked by chi-square over many seeds on a fixed workload.
"""

import random
from collections import Counter

import pytest

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    JoinExecutor,
    JoinSynopsisMaintainer,
    SynopsisSpec,
    TableSchema,
    parse_query,
)

from conftest import chi_square_threshold, chi_square_uniform

# triangle: r-s, s-t equality edges + the cycle-closing inequality t-r,
# which the planner demotes to a residual filter
SQL = ("SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b "
       "AND t.c <= r.x")


def build_script():
    rng = random.Random(31337)
    script = []
    for i in range(14):
        script.append(("r", (rng.randrange(3), rng.randrange(6))))
        script.append(("s", (rng.randrange(3), rng.randrange(3))))
        script.append(("t", (rng.randrange(3), rng.randrange(6))))
    return script


SCRIPT = build_script()


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("b")]))
    db.create_table(TableSchema("t", [Column("b"), Column("c")]))
    return db


def run_once(seed):
    db = make_db()
    maintainer = JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(6), engine="sjoin", seed=seed, use_statistics=False))
    for alias, row in SCRIPT:
        maintainer.insert(alias, row)
    return db, maintainer


@pytest.fixture(scope="module")
def oracle():
    db, maintainer = run_once(0)
    query = parse_query(SQL, db)
    filtered = sorted(JoinExecutor(db, query).results())
    # tree-only semantics: the same query without the cycle-closing edge
    tree_sql = "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
    unfiltered = JoinExecutor(db, parse_query(tree_sql, db)).count()
    return filtered, unfiltered


def test_workload_filters_meaningfully(oracle):
    filtered, unfiltered = oracle
    assert 8 <= len(filtered) < unfiltered


def test_filtered_synopsis_is_uniform_over_filtered_results(oracle):
    filtered, _ = oracle
    counts = Counter()
    trials = 600
    for t in range(trials):
        db, maintainer = run_once(t)
        results = maintainer.synopsis()
        assert set(results) <= set(filtered)
        for r in results:
            counts[r] += 1
    stat = chi_square_uniform([counts[r] for r in filtered])
    assert stat < chi_square_threshold(len(filtered) - 1)


def test_total_results_counts_tree_results(oracle):
    _, unfiltered = oracle
    _, maintainer = run_once(5)
    # J counts tree-predicate results; the residual is read-time only
    assert maintainer.total_results() == unfiltered
