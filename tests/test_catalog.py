"""Unit tests for schemas, heap tables and the database catalog."""

import pytest

from repro import (
    CatalogError,
    Column,
    Database,
    DataType,
    ForeignKey,
    SchemaError,
    TableSchema,
    TupleNotFoundError,
)


def simple_schema(name="t"):
    return TableSchema(name, [Column("a"), Column("b", DataType.STR)])


class TestDataType:
    def test_int_accepts_ints_only(self):
        assert DataType.INT.validate(3)
        assert not DataType.INT.validate(3.5)
        assert not DataType.INT.validate(True)
        assert not DataType.INT.validate("3")

    def test_float_accepts_ints_and_floats(self):
        assert DataType.FLOAT.validate(3)
        assert DataType.FLOAT.validate(3.5)
        assert not DataType.FLOAT.validate(True)

    def test_str_and_bool(self):
        assert DataType.STR.validate("x")
        assert not DataType.STR.validate(1)
        assert DataType.BOOL.validate(False)
        assert not DataType.BOOL.validate(0)

    def test_none_is_always_type_valid(self):
        assert DataType.INT.validate(None)

    def test_numeric_flags(self):
        assert DataType.INT.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STR.is_numeric


class TestSchema:
    def test_column_positions(self):
        schema = simple_schema()
        assert schema.index_of("a") == 0
        assert schema.index_of("b") == 1
        assert schema.column_names == ("a", "b")

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            simple_schema().index_of("zzz")

    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")])

    def test_bad_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("1bad", [Column("a")])
        with pytest.raises(SchemaError):
            Column("not a name")

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a")], primary_key=("nope",))

    def test_foreign_key_arity_checked(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "other", ("x",))
        with pytest.raises(SchemaError):
            ForeignKey((), "other", ())

    def test_foreign_key_columns_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t", [Column("a")],
                foreign_keys=(ForeignKey(("zzz",), "other", ("x",)),),
            )

    def test_row_validation(self):
        schema = simple_schema()
        schema.validate_row((1, "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((1,))
        with pytest.raises(SchemaError):
            schema.validate_row(("x", "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((None, "x"))  # not nullable

    def test_nullable_column(self):
        schema = TableSchema("t", [Column("a", nullable=True)])
        schema.validate_row((None,))

    def test_is_unique_key_superset_of_pk(self):
        schema = TableSchema(
            "t", [Column("a"), Column("b")], primary_key=("a",)
        )
        assert schema.is_unique_key(("a",))
        assert schema.is_unique_key(("a", "b"))
        assert not schema.is_unique_key(("b",))

    def test_no_pk_means_nothing_unique(self):
        assert not simple_schema().is_unique_key(("a",))

    def test_find_foreign_key(self):
        fk = ForeignKey(("a",), "other", ("x",))
        schema = TableSchema("t", [Column("a")], foreign_keys=(fk,))
        assert schema.find_foreign_key(("a",), "other") == fk
        assert schema.find_foreign_key(("a",), "elsewhere") is None


class TestTable:
    def test_insert_assigns_sequential_tids(self):
        db = Database()
        table = db.create_table(simple_schema())
        assert table.insert((1, "x")) == 0
        assert table.insert((2, "y")) == 1
        assert len(table) == 2

    def test_delete_tombstones_and_never_reuses_tids(self):
        db = Database()
        table = db.create_table(simple_schema())
        tid = table.insert((1, "x"))
        table.delete(tid)
        assert not table.is_live(tid)
        assert table.insert((2, "y")) == 1  # tid 0 not reused
        assert len(table) == 1

    def test_get_deleted_raises(self):
        db = Database()
        table = db.create_table(simple_schema())
        tid = table.insert((1, "x"))
        table.delete(tid)
        with pytest.raises(TupleNotFoundError):
            table.get(tid)
        with pytest.raises(TupleNotFoundError):
            table.delete(tid)

    def test_get_out_of_range_raises(self):
        db = Database()
        table = db.create_table(simple_schema())
        with pytest.raises(TupleNotFoundError):
            table.get(0)

    def test_peek_sees_tombstones(self):
        db = Database()
        table = db.create_table(simple_schema())
        tid = table.insert((1, "x"))
        table.delete(tid)
        assert table.peek(tid) == (1, "x")
        assert table.peek(99) is None

    def test_scan_skips_tombstones(self):
        db = Database()
        table = db.create_table(simple_schema())
        t0 = table.insert((1, "x"))
        t1 = table.insert((2, "y"))
        table.delete(t0)
        assert list(table.scan()) == [(t1, (2, "y"))]
        assert list(table.live_tids()) == [t1]

    def test_value_accessor(self):
        db = Database()
        table = db.create_table(simple_schema())
        tid = table.insert((7, "hi"))
        assert table.value(tid, "b") == "hi"

    def test_validation_can_be_disabled(self):
        from repro.catalog.table import Table
        table = Table(simple_schema(), validate=False)
        table.insert(("wrong", 3))  # no error

    def test_high_water_mark(self):
        db = Database()
        table = db.create_table(simple_schema())
        table.insert((1, "x"))
        table.delete(0)
        assert table.high_water_mark == 1


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table(simple_schema("x"))
        assert db.has_table("x")
        assert "x" in db
        assert db.table("x").schema.name == "x"

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(simple_schema("x"))
        with pytest.raises(CatalogError):
            db.create_table(simple_schema("x"))

    def test_missing_table_raises(self):
        with pytest.raises(CatalogError):
            Database().table("nope")

    def test_drop_table(self):
        db = Database()
        db.create_table(simple_schema("x"))
        db.drop_table("x")
        assert not db.has_table("x")
        with pytest.raises(CatalogError):
            db.drop_table("x")

    def test_bulk_load(self):
        db = Database()
        db.create_table(simple_schema("x"))
        tids = db.load("x", [(1, "a"), (2, "b")])
        assert tids == [0, 1]
        assert db.table("x").get(1) == (2, "b")

    def test_insert_delete_passthrough(self):
        db = Database()
        db.create_table(simple_schema("x"))
        tid = db.insert("x", (1, "a"))
        assert db.delete("x", tid) == (1, "a")
