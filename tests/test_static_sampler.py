"""Static join sampler tests (the §3 related-work comparator)."""

import random
from collections import Counter

import pytest

from repro import (
    Column,
    Database,
    JoinExecutor,
    ReproError,
    TableSchema,
    parse_query,
)
from repro.core.static_sampler import StaticJoinSampler

from conftest import (
    chi_square_threshold,
    chi_square_uniform,
    make_tables,
    random_query,
    random_row,
)


def small_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 1)])
    rng = random.Random(1)
    for _ in range(20):
        db.insert("r", random_row(rng, 2, 4))
        db.insert("s", random_row(rng, 2, 4))
        db.insert("t", random_row(rng, 1, 4))
    return db


SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND |s.c1 - t.c0| <= 1"


class TestTotals:
    def test_total_matches_exact(self):
        db = small_db()
        q = parse_query(SQL, db)
        sampler = StaticJoinSampler(db, q)
        assert sampler.total_results() == JoinExecutor(db, q).count()

    def test_total_matches_for_any_root(self):
        db = small_db()
        q = parse_query(SQL, db)
        exact = JoinExecutor(db, q).count()
        for alias in ("r", "s", "t"):
            sampler = StaticJoinSampler(db, q, root_alias=alias)
            assert sampler.total_results() == exact

    def test_random_queries_property(self, rng):
        for _ in range(5):
            db, query = random_query(rng, 3)
            for alias in query.aliases:
                table = db.table(query.range_table(alias).table_name)
                for _ in range(12):
                    table.insert(
                        random_row(rng, len(table.schema.columns), 4)
                    )
            sampler = StaticJoinSampler(db, query)
            exact = JoinExecutor(db, query, include_filters=False,
                                 include_residual=False).count()
            assert sampler.total_results() == exact


class TestSampling:
    def test_samples_are_valid_results(self):
        db = small_db()
        q = parse_query(SQL, db)
        sampler = StaticJoinSampler(db, q)
        exact = set(JoinExecutor(db, q).results())
        rng = random.Random(2)
        for _ in range(200):
            assert sampler.sample(rng) in exact

    def test_sampling_uniform(self):
        db = Database()
        make_tables(db, [("r", 1), ("s", 1)])
        rng = random.Random(3)
        for _ in range(8):
            db.insert("r", (rng.randrange(3),))
            db.insert("s", (rng.randrange(3),))
        q = parse_query("SELECT * FROM r, s WHERE r.c0 = s.c0", db)
        sampler = StaticJoinSampler(db, q)
        exact = sorted(JoinExecutor(db, q).results())
        counts = Counter(sampler.sample(rng) for _ in range(12000))
        stat = chi_square_uniform([counts[e] for e in exact])
        assert stat < chi_square_threshold(len(exact) - 1)

    def test_empty_join_raises(self):
        db = Database()
        make_tables(db, [("r", 1), ("s", 1)])
        db.insert("r", (1,))
        db.insert("s", (2,))
        q = parse_query("SELECT * FROM r, s WHERE r.c0 = s.c0", db)
        sampler = StaticJoinSampler(db, q)
        assert sampler.total_results() == 0
        with pytest.raises(ReproError):
            sampler.sample(random.Random(0))

    def test_sample_many(self):
        db = small_db()
        q = parse_query(SQL, db)
        sampler = StaticJoinSampler(db, q)
        samples = sampler.sample_many(25, random.Random(4))
        assert len(samples) == 25


class TestStaleness:
    def test_updates_not_reflected_until_rebuild(self):
        """The §3 limitation in one test: the static sampler is frozen."""
        db = Database()
        make_tables(db, [("r", 1), ("s", 1)])
        db.insert("r", (1,))
        db.insert("s", (1,))
        q = parse_query("SELECT * FROM r, s WHERE r.c0 = s.c0", db)
        sampler = StaticJoinSampler(db, q)
        assert sampler.total_results() == 1
        db.insert("s", (1,))  # the database moved on
        assert sampler.total_results() == 1  # ... the sampler did not
        sampler.rebuild()     # full rescan required
        assert sampler.total_results() == 2

    def test_residual_filters_rejected(self):
        db = Database()
        make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
        q = parse_query(
            "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0 "
            "AND t.c1 <= r.c1", db)  # cyclic -> demoted residual
        with pytest.raises(ReproError):
            StaticJoinSampler(db, q)
