"""Hypothesis stateful testing: an adversarial sequence of operations
drives an engine, with full-oracle invariant checks after every step.

Four machines: SJoin on an equi-join, SJoin on a band join (range-edge
delta sweeps), SJoin-opt on an FK query (combined-node runtime), and a
persistence machine interleaving checkpoint/restore cycles with updates
while a never-restarted twin receives the identical op stream.
"""

import pickle
import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    ForeignKey,
    JoinExecutor,
    SJoinEngine,
    SynopsisSpec,
    TableSchema,
    parse_query,
)
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.persist import (
    capture_database,
    capture_maintainer,
    restore_database,
    restore_maintainer,
)

VALUES = st.integers(min_value=0, max_value=4)


class _EngineMachine(RuleBasedStateMachine):
    """Common rules; subclasses define the schema/query."""

    M = 5

    def make_engine(self):  # pragma: no cover - abstract
        raise NotImplementedError

    @initialize()
    def setup(self):
        self.engine = self.make_engine()
        self.live = {alias: [] for alias in self.engine.query.aliases}
        self.steps = 0

    def _check(self):
        exact = set(JoinExecutor(
            self.engine.db, self.engine.query,
            include_filters=False, include_residual=False,
        ).results())
        assert self.engine.total_results() == len(exact)
        samples = set(self.engine.raw_samples())
        plan_exact = {
            tuple(r) for r in exact
        } if self.engine.plan.num_nodes == len(
            self.engine.query.range_tables
        ) else None
        if plan_exact is not None:
            assert samples <= plan_exact
            assert len(self.engine.raw_samples()) == \
                min(self.M, len(exact))

    @invariant()
    def graph_consistent(self):
        if not hasattr(self, "engine"):
            return
        self.steps += 1
        if self.steps % 5 == 0:
            self.engine.graph.check_invariants()
            self._check()


class EquiJoinMachine(_EngineMachine):
    def make_engine(self):
        db = Database()
        db.create_table(TableSchema("r", [Column("a"), Column("b")]))
        db.create_table(TableSchema("s", [Column("a"), Column("b")]))
        query = parse_query(
            "SELECT * FROM r, s WHERE r.a = s.a AND r.b = s.b", db)
        return SJoinEngine(db, query, SynopsisSpec.fixed_size(self.M),
                           seed=0)

    @rule(a=VALUES, b=VALUES, side=st.booleans())
    def insert(self, a, b, side):
        alias = "r" if side else "s"
        tid = self.engine.insert(alias, (a, b))
        self.live[alias].append(tid)

    @precondition(lambda self: any(self.live.values()))
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete(self, pick):
        candidates = [a for a in self.live if self.live[a]]
        alias = candidates[pick % len(candidates)]
        tids = self.live[alias]
        tid = tids.pop(pick % len(tids))
        self.engine.delete(alias, tid)


class BandJoinMachine(_EngineMachine):
    def make_engine(self):
        db = Database()
        for name in ("x", "y", "z"):
            db.create_table(TableSchema(name, [Column("p")]))
        query = parse_query(
            "SELECT * FROM x, y, z "
            "WHERE |x.p - y.p| <= 1 AND |y.p - z.p| <= 1", db)
        return SJoinEngine(db, query, SynopsisSpec.fixed_size(self.M),
                           seed=1)

    @rule(p=st.integers(min_value=0, max_value=8),
          which=st.integers(min_value=0, max_value=2))
    def insert(self, p, which):
        alias = "xyz"[which]
        tid = self.engine.insert(alias, (p,))
        self.live[alias].append(tid)

    @precondition(lambda self: any(self.live.values()))
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete(self, pick):
        candidates = [a for a in self.live if self.live[a]]
        alias = candidates[pick % len(candidates)]
        tids = self.live[alias]
        tid = tids.pop(pick % len(tids))
        self.engine.delete(alias, tid)


class FkMachine(_EngineMachine):
    def make_engine(self):
        db = Database()
        db.create_table(TableSchema(
            "dim", [Column("d_id"), Column("band")],
            primary_key=("d_id",)))
        db.create_table(TableSchema(
            "fact", [Column("f_dim"), Column("v")],
            foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),)))
        db.create_table(TableSchema("other", [Column("band")]))
        query = parse_query(
            "SELECT * FROM fact, dim, other "
            "WHERE fact.f_dim = dim.d_id AND dim.band = other.band", db)
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(self.M),
                             fk_optimize=True, seed=2)
        self.next_dim = 0
        return engine

    @rule(band=VALUES)
    def insert_dim(self, band):
        self.engine.insert("dim", (self.next_dim, band))
        self.live["dim"].append(self.next_dim)
        self.next_dim += 1

    @precondition(lambda self: self.live.get("dim"))
    @rule(v=VALUES, pick=st.integers(min_value=0, max_value=10**6))
    def insert_fact(self, v, pick):
        dim_id = self.live["dim"][pick % len(self.live["dim"])]
        tid = self.engine.insert("fact", (dim_id, v))
        self.live["fact"].append(tid)

    @rule(band=VALUES)
    def insert_other(self, band):
        tid = self.engine.insert("other", (band,))
        self.live["other"].append(tid)

    @precondition(lambda self: self.live.get("fact"))
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete_fact(self, pick):
        tids = self.live["fact"]
        tid = tids.pop(pick % len(tids))
        self.engine.delete("fact", tid)

    @precondition(lambda self: self.live.get("other"))
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete_other(self, pick):
        tids = self.live["other"]
        tid = tids.pop(pick % len(tids))
        self.engine.delete("other", tid)


class PersistRoundTripMachine(RuleBasedStateMachine):
    """Random op sequences interleaving inserts, deletes and
    checkpoint/restore cycles.

    Two maintainers receive the identical update stream; one of them is
    additionally torn down and rebuilt from a pickled snapshot at
    adversarially chosen points.  After every step the restored subject
    must match the never-restarted twin *exactly* — synopsis contents,
    ``total_results()``, stats, and the RNG state that decides all
    future sampling.
    """

    M = 5
    SQL = "SELECT * FROM r, s WHERE r.a = s.a AND r.b = s.b"

    def _make(self):
        db = Database()
        db.create_table(TableSchema("r", [Column("a"), Column("b")]))
        db.create_table(TableSchema("s", [Column("a"), Column("b")]))
        return JoinSynopsisMaintainer(
            db, self.SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(self.M), seed=11))

    @initialize()
    def setup(self):
        self.subject = self._make()
        self.twin = self._make()
        self.live = {"r": [], "s": []}
        self.restores = 0

    @rule(a=VALUES, b=VALUES, side=st.booleans())
    def insert(self, a, b, side):
        alias = "r" if side else "s"
        tid = self.subject.insert(alias, (a, b))
        assert self.twin.insert(alias, (a, b)) == tid
        if tid >= 0:
            self.live[alias].append(tid)

    @precondition(lambda self: any(self.live.values()))
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def delete(self, pick):
        candidates = [a for a in self.live if self.live[a]]
        alias = candidates[pick % len(candidates)]
        tids = self.live[alias]
        tid = tids.pop(pick % len(tids))
        self.subject.delete(alias, tid)
        self.twin.delete(alias, tid)

    @rule()
    def checkpoint_restore(self):
        blob = pickle.dumps({
            "database": capture_database(self.subject.db),
            "maintainer": capture_maintainer(self.subject),
        })
        state = pickle.loads(blob)
        db = restore_database(state["database"])
        self.subject = restore_maintainer(db, state["maintainer"])
        self.restores += 1

    @invariant()
    def subject_matches_twin(self):
        if not hasattr(self, "subject"):
            return
        assert self.subject.total_results() == self.twin.total_results()
        assert self.subject.synopsis() == self.twin.synopsis()
        assert self.subject.stats() == self.twin.stats()
        assert self.subject.engine.rng.getstate() == \
            self.twin.engine.rng.getstate()


_settings = settings(max_examples=15, stateful_step_count=25,
                     deadline=None)

TestEquiJoinMachine = EquiJoinMachine.TestCase
TestEquiJoinMachine.settings = _settings
TestBandJoinMachine = BandJoinMachine.TestCase
TestBandJoinMachine.settings = _settings
TestFkMachine = FkMachine.TestCase
TestFkMachine.settings = _settings
TestPersistRoundTripMachine = PersistRoundTripMachine.TestCase
TestPersistRoundTripMachine.settings = _settings
