"""API error-path tests: wrong usage must fail loudly and precisely."""

import pytest

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    JoinQuery,
    JoinSynopsisMaintainer,
    PlanError,
    QueryError,
    RangeTable,
    SchemaError,
    SJoinEngine,
    SynopsisSpec,
    TableSchema,
    TupleNotFoundError,
    parse_query,
)


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


def make_maintainer(db=None):
    db = db or make_db()
    return db, JoinSynopsisMaintainer(
        db, "SELECT * FROM r, s WHERE r.a = s.a", MaintainerConfig(spec=SynopsisSpec.fixed_size(5), seed=0))


class TestEngineErrors:
    def test_delete_unknown_tid(self):
        db, m = make_maintainer()
        with pytest.raises(TupleNotFoundError):
            m.delete("r", 99)

    def test_delete_twice(self):
        db, m = make_maintainer()
        tid = m.insert("r", (1, 2))
        m.delete("r", tid)
        with pytest.raises(TupleNotFoundError):
            m.delete("r", tid)

    def test_insert_wrong_arity(self):
        db, m = make_maintainer()
        with pytest.raises(SchemaError):
            m.insert("r", (1, 2, 3))

    def test_insert_wrong_type(self):
        db, m = make_maintainer()
        with pytest.raises(SchemaError):
            m.insert("r", ("not-an-int", 2))

    def test_insert_unknown_alias(self):
        db, m = make_maintainer()
        with pytest.raises(QueryError):
            m.insert("zzz", (1, 2))


class TestQueryErrors:
    def test_query_over_missing_table(self):
        db = make_db()
        with pytest.raises(QueryError):
            JoinSynopsisMaintainer(db, "SELECT * FROM nope, r "
                                       "WHERE nope.a = r.a")

    def test_query_over_missing_column(self):
        db = make_db()
        with pytest.raises(Exception):  # ParseError or QueryError
            JoinSynopsisMaintainer(db, "SELECT * FROM r, s "
                                       "WHERE r.zzz = s.a")

    def test_duplicate_alias(self):
        with pytest.raises(QueryError):
            JoinQuery([RangeTable("r", "r"), RangeTable("r", "r")])

    def test_cartesian_product_rejected(self):
        db = make_db()
        query = JoinQuery(
            [RangeTable("r", "r"), RangeTable("s", "s")], []
        )
        with pytest.raises(PlanError):
            SJoinEngine(db, query, SynopsisSpec.fixed_size(5))

    def test_predicate_alias_validation(self):
        from repro import ComparisonOp, JoinPredicate
        with pytest.raises(QueryError):
            JoinQuery(
                [RangeTable("r", "r")],
                [JoinPredicate("r", "a", ComparisonOp.EQ, "ghost", "b")],
            )


class TestViewErrors:
    def test_join_number_out_of_range(self):
        from repro.graph.join_number import JoinNumberError, \
            map_join_number
        db, m = make_maintainer()
        m.insert("r", (1, 0))
        m.insert("s", (1, 0))
        graph = m.engine.graph
        assert map_join_number(graph, 0, 0) == (0, 0)
        with pytest.raises(JoinNumberError):
            map_join_number(graph, 0, 1)

    def test_graph_delete_unregistered(self):
        db, m = make_maintainer()
        with pytest.raises(TupleNotFoundError):
            m.engine.graph.delete_tuple(0, 5, (1, 2))
