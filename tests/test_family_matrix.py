"""CI synopsis-family matrix: one workload, three families.

CI runs this module once per family with ``REPRO_SYNOPSIS_FAMILY`` set
to ``uniform``, ``weighted`` or ``subset``; unset, it exercises the
uniform family, so the module is also a plain tier-1 citizen.  Every
family drives the same mixed single/batch insert + delete workload and
must uphold the family-independent invariants (samples are live
results, J is exact, caps hold) plus its own membership law.
"""

import os
import random

import pytest

from repro import (
    Database,
    InsertOp,
    JoinSynopsisMaintainer,
    MaintainerConfig,
    SynopsisService,
    SynopsisSpec,
    family_of_kind,
    parse_query,
)

from conftest import make_tables

FAMILY = os.environ.get("REPRO_SYNOPSIS_FAMILY", "uniform")

SQL = "SELECT * FROM r, s WHERE r.c0 = s.c0"

WEIGHT_COLUMN = "r.c2"

SPECS_BY_FAMILY = {
    "uniform": [
        ("fixed", SynopsisSpec.fixed_size(12)),
        ("replacement", SynopsisSpec.with_replacement(12)),
        ("bernoulli", SynopsisSpec.bernoulli(0.25)),
    ],
    "weighted": [
        ("weighted_fixed",
         SynopsisSpec.weighted_fixed_size(
             12, weight_column=WEIGHT_COLUMN)),
        ("weighted_replacement",
         SynopsisSpec.weighted_with_replacement(
             12, weight_column=WEIGHT_COLUMN)),
    ],
    "subset": [
        ("subset", SynopsisSpec.subset(0.25,
                                       weight_column=WEIGHT_COLUMN)),
    ],
}

if FAMILY not in SPECS_BY_FAMILY:
    raise RuntimeError(
        f"REPRO_SYNOPSIS_FAMILY={FAMILY!r} is not one of "
        f"{sorted(SPECS_BY_FAMILY)}")

SPECS = SPECS_BY_FAMILY[FAMILY]
SPEC_IDS = [name for name, _ in SPECS]
SPEC_VALUES = [spec for _, spec in SPECS]


def build(spec, seed):
    db = Database()
    make_tables(db, [("r", 3), ("s", 2)])
    maintainer = JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=spec, seed=seed))
    return db, maintainer


def run_workload(target, rng, n, live):
    """Mixed batch/single inserts and deletes; returns nothing, the
    exact state lives in ``live[alias] = {tid: row}``."""
    tables = ["r", "s"]
    for _ in range(n):
        roll = rng.random()
        if roll < 0.25 and any(live[a] for a in tables):
            alias = rng.choice([a for a in tables if live[a]])
            tid = rng.choice(sorted(live[alias]))
            del live[alias][tid]
            target.delete(alias, tid)
        elif roll < 0.55:
            ops = []
            for _ in range(rng.randrange(1, 5)):
                alias = rng.choice(tables)
                ops.append(InsertOp(alias, make_row(alias, rng)))
            result = target.apply_batch(ops)
            for op, tid in zip(ops, result.tids):
                if tid >= 0:
                    live[op.target][tid] = tuple(op.row)
        else:
            alias = rng.choice(tables)
            row = make_row(alias, rng)
            tid = target.insert(alias, row)
            if tid >= 0:
                live[alias][tid] = row
    return live


def make_row(alias, rng, domain=4):
    key = rng.randrange(domain)
    if alias == "r":
        return (key, rng.randrange(1000), rng.randrange(1, 5))
    return (key, rng.randrange(1000))


def exact_results(live):
    """tid-pair -> unit weight for the current live rows."""
    out = {}
    for r_tid, r_row in live["r"].items():
        for s_tid, s_row in live["s"].items():
            if r_row[0] == s_row[0]:
                weight = r_row[2] if FAMILY in ("weighted", "subset") \
                    else 1
                out[(r_tid, s_tid)] = weight
    return out


@pytest.mark.parametrize("spec", SPEC_VALUES, ids=SPEC_IDS)
class TestFamilyWorkload:
    def test_invariants_hold_throughout(self, spec):
        _, maintainer = build(spec, seed=11)
        live = {"r": {}, "s": {}}
        rng = random.Random(17)
        for _ in range(6):  # checkpoints between workload bursts
            run_workload(maintainer, rng, 40, live)
            expected = exact_results(live)
            assert maintainer.total_results() == \
                sum(expected.values())
            samples = maintainer.engine.raw_samples()
            for result in samples:
                assert tuple(result) in expected
            if spec.size is not None:
                assert len(samples) <= spec.size
            if spec.kind in ("fixed", "weighted_fixed"):
                # w/o replacement the reservoir runs over the unit
                # domain, so it fills to min(m, J_w) — the weighted
                # kind may legitimately hold one result per unit
                assert len(samples) == \
                    min(spec.size, sum(expected.values()))
            assert maintainer.family == family_of_kind(spec.kind)

    def test_meta_matches_family_contract(self, spec):
        _, maintainer = build(spec, seed=5)
        live = run_workload(
            maintainer, random.Random(23), 120, {"r": {}, "s": {}})
        expected = exact_results(live)
        for result, meta in maintainer.synopsis_entries():
            assert meta["weight"] == expected[tuple(result)]
            if FAMILY == "subset":
                pi = meta["inclusion_probability"]
                assert 0.0 < pi <= 1.0
                assert pi == pytest.approx(
                    1.0 - (1.0 - spec.rate) ** meta["weight"])
            else:
                assert "inclusion_probability" not in meta

    def test_service_reports_family_end_to_end(self, spec):
        _, maintainer = build(spec, seed=2)
        with SynopsisService(maintainer) as service:
            for i in range(8):
                service.insert("r", (i % 3, i, 1 + i % 4))
                service.insert("s", (i % 3, i))
            assert service.healthz()["synopsis_family"] == FAMILY
            payload = service.synopsis_payload()
            assert payload["family"] == FAMILY
            assert len(payload["meta"]) == len(payload["synopsis"])
            for meta in payload["meta"]:
                assert meta["weight"] >= 1
