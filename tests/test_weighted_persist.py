"""Durability of the weighted + subset synopsis families.

The ISSUE-8 acceptance bar: a weighted synopsis must survive both a
snapshot round trip and a WAL-tail replay *bit-identically* — samples,
spec (family + weight column), and the RNG stream — and legacy state
dicts written before the family seam decode onto the uniform family.
"""

import pickle
import random

import pytest

from repro import Database, JoinSynopsisMaintainer, MaintainerConfig, \
    SynopsisSpec
from repro.persist import (
    PersistentMaintainer,
    capture_database,
    capture_maintainer,
    restore_database,
    restore_maintainer,
)
from repro.persist.state import spec_from_dict, spec_to_dict

from conftest import make_tables

SQL = "SELECT * FROM r, s WHERE r.c0 = s.c0"

SPECS = [
    SynopsisSpec.weighted_fixed_size(8, weight_column="r.c2"),
    SynopsisSpec.weighted_with_replacement(8, weight_column="r.c2"),
    SynopsisSpec.subset(0.3, weight_column="r.c2"),
]
IDS = ["weighted_fixed", "weighted_replacement", "subset"]


def make_db():
    db = Database()
    make_tables(db, [("r", 3), ("s", 2)])
    return db


def build(spec, seed=7):
    db = make_db()
    maintainer = JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=spec, seed=seed))
    return db, maintainer


def drive(target, rng, n, domain=4):
    """Random inserts/deletes; ``r.c2`` carries integer weights 1-4."""
    live = {"r": [], "s": []}
    for _ in range(n):
        alias = "r" if rng.random() < 0.5 else "s"
        if live[alias] and rng.random() < 0.3:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            target.delete(alias, tid)
        else:
            key = rng.randrange(domain)
            if alias == "r":
                row = (key, rng.randrange(100), rng.randrange(1, 5))
            else:
                row = (key, rng.randrange(100))
            tid = target.insert(alias, row)
            if tid >= 0:
                live[alias].append(tid)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_round_trip_is_bit_identical(self, spec):
        db, maintainer = build(spec)
        drive(maintainer, random.Random(1), 150)
        state = pickle.loads(
            pickle.dumps(capture_maintainer(maintainer)))
        restored = restore_maintainer(
            restore_database(capture_database(db)), state)
        assert restored.family == maintainer.family
        assert restored.engine.spec.kind == spec.kind
        assert restored.engine.spec.weight_column == "r.c2"
        assert restored.engine.raw_samples() == \
            maintainer.engine.raw_samples()
        assert restored.synopsis() == maintainer.synopsis()
        assert restored.synopsis_meta() == maintainer.synopsis_meta()
        assert restored.engine.rng.getstate() == \
            maintainer.engine.rng.getstate()
        # the worlds stay merged: identical future update stream
        drive(maintainer, random.Random(2), 100)
        drive(restored, random.Random(2), 100)
        assert restored.engine.raw_samples() == \
            maintainer.engine.raw_samples()
        assert restored.engine.rng.getstate() == \
            maintainer.engine.rng.getstate()


class TestWalRecovery:
    @pytest.mark.parametrize("spec", SPECS, ids=IDS)
    def test_recover_replays_weighted_tail(self, tmp_path, spec):
        _, maintainer = build(spec, seed=3)
        pm = PersistentMaintainer(maintainer, str(tmp_path))
        rng = random.Random(4)
        drive(pm, rng, 100)
        pm.checkpoint()
        drive(pm, rng, 60)  # WAL-only tail beyond the checkpoint
        expected_samples = maintainer.engine.raw_samples()
        expected_rng = maintainer.engine.rng.getstate()
        expected_total = pm.total_results()
        pm.abandon()

        recovered = PersistentMaintainer.recover(str(tmp_path))
        assert recovered.replayed_ops > 0
        assert recovered.family == maintainer.family
        assert recovered.maintainer.engine.spec.weight_column == "r.c2"
        assert recovered.total_results() == expected_total
        assert recovered.maintainer.engine.raw_samples() == \
            expected_samples
        assert recovered.maintainer.engine.rng.getstate() == \
            expected_rng
        recovered.close()

    def test_checkpoint_pins_weighted_spec(self, tmp_path):
        _, maintainer = build(SPECS[0], seed=5)
        pm = PersistentMaintainer(maintainer, str(tmp_path))
        drive(pm, random.Random(6), 80)
        pm.checkpoint()
        pm.close()
        recovered = PersistentMaintainer.recover(str(tmp_path))
        assert recovered.replayed_ops == 0
        spec = recovered.maintainer.engine.spec
        assert spec.kind == "weighted_fixed"
        assert spec.weight_column == "r.c2"
        recovered.close()


class TestLegacyStateDecoding:
    def test_spec_dict_round_trip_keeps_weight_column(self):
        for spec in SPECS:
            decoded = spec_from_dict(spec_to_dict(spec))
            assert decoded.kind == spec.kind
            assert decoded.weight_column == spec.weight_column

    def test_legacy_spec_dict_decodes_onto_uniform(self):
        """Pre-family state has no ``weight_column`` key; it must load
        as the plain uniform kind it always was."""
        legacy = {"kind": "fixed", "size": 12, "rate": None}
        decoded = spec_from_dict(legacy)
        assert decoded.kind == "fixed"
        assert decoded.weight_column is None

    def test_legacy_maintainer_state_restores_onto_uniform(self):
        db, maintainer = build(SynopsisSpec.fixed_size(10))
        drive(maintainer, random.Random(8), 60)
        state = capture_maintainer(maintainer)
        # strip the family-era key, as states written before it lack it
        for key in ("requested_spec", "effective_spec"):
            state[key] = {k: v for k, v in state[key].items()
                          if k != "weight_column"}
        state = pickle.loads(pickle.dumps(state))
        restored = restore_maintainer(
            restore_database(capture_database(db)), state)
        assert restored.family == "uniform"
        assert restored.engine.spec.weight_column is None
        assert restored.synopsis() == maintainer.synopsis()
