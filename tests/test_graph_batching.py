"""The difference-array sweep is an optimisation, not a semantic change:
with ``batch_updates=False`` the graph must maintain identical state."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.join_graph import WeightedJoinGraph
from repro.query.planner import plan_query

from conftest import random_query, random_row


def run_updates(graph, db, query, rng, steps=35):
    tables = {
        alias: db.table(query.range_table(alias).table_name)
        for alias in query.aliases
    }
    live = {alias: [] for alias in query.aliases}
    for _ in range(steps):
        if rng.random() < 0.3 and any(live.values()):
            alias = rng.choice([a for a in live if live[a]])
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            row = tables[alias].get(tid)
            graph.delete_tuple(query.index_of(alias), tid, row)
            tables[alias].delete(tid)
        else:
            alias = rng.choice(list(query.aliases))
            row = random_row(rng, len(tables[alias].schema.columns), 4)
            tid = tables[alias].insert(row)
            graph.insert_tuple(query.index_of(alias), tid, row)
            live[alias].append(tid)


def graph_state(graph):
    state = {}
    for node_idx, hash_index in enumerate(graph.hash_indexes):
        for key, vertex in sorted(hash_index.items()):
            state[(node_idx, key)] = (
                tuple(vertex.ids), vertex.w_full,
                tuple(sorted(vertex.w_out.items())),
                tuple(sorted(vertex.W_in.items())),
            )
    return state


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_batched_and_unbatched_state_identical(seed):
    states = []
    for batch in (True, False):
        rng = random.Random(seed)
        db, query = random_query(rng, 3)
        plan = plan_query(query, db)
        graph = WeightedJoinGraph(plan, batch_updates=batch)
        run_updates(graph, db, query, random.Random(seed + 1))
        graph.check_invariants()
        states.append(graph_state(graph))
    assert states[0] == states[1]


def test_unbatched_flag_exposed_through_engine():
    from repro import Column, Database, SJoinEngine, SynopsisSpec, \
        TableSchema, parse_query

    db = Database()
    db.create_table(TableSchema("r", [Column("a")]))
    db.create_table(TableSchema("s", [Column("a")]))
    query = parse_query("SELECT * FROM r, s WHERE |r.a - s.a| <= 1", db)
    engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(5), seed=0,
                         batch_updates=False)
    assert not engine.graph.batch_updates
    engine.insert("r", (1,))
    engine.insert("s", (2,))
    assert engine.total_results() == 1
