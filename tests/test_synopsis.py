"""Synopsis framework tests (Algorithm 3 over materialised views)."""

import random
from collections import Counter

import pytest

from repro.core.symmetric_join import ListView
from repro.core.synopsis import (
    BernoulliSynopsis,
    FixedSizeWithReplacement,
    FixedSizeWithoutReplacement,
    SynopsisSpec,
)
from repro.errors import SynopsisError

from conftest import chi_square_threshold, chi_square_uniform


def make_results(n, node_width=2):
    """n distinct fake join results (tuples of tids)."""
    return [(i, i + 1000) for i in range(n)]


class TestSpec:
    def test_factories(self):
        assert SynopsisSpec.fixed_size(5).kind == "fixed"
        assert SynopsisSpec.with_replacement(5).kind == "fixed_replacement"
        assert SynopsisSpec.bernoulli(0.5).kind == "bernoulli"

    def test_validation(self):
        with pytest.raises(SynopsisError):
            SynopsisSpec.fixed_size(0)
        with pytest.raises(SynopsisError):
            SynopsisSpec.with_replacement(-1)
        with pytest.raises(SynopsisError):
            SynopsisSpec.bernoulli(0.0)
        with pytest.raises(SynopsisError):
            SynopsisSpec.bernoulli(2.0)

    def test_build(self):
        rng = random.Random(0)
        assert isinstance(SynopsisSpec.fixed_size(3).build(rng),
                          FixedSizeWithoutReplacement)
        assert isinstance(SynopsisSpec.with_replacement(3).build(rng),
                          FixedSizeWithReplacement)
        assert isinstance(SynopsisSpec.bernoulli(0.5).build(rng),
                          BernoulliSynopsis)

    def test_unknown_kind(self):
        with pytest.raises(SynopsisError):
            SynopsisSpec("nope").build(random.Random(0))


class TestFixedWithoutReplacement:
    def test_fills_then_stays_at_m(self):
        syn = FixedSizeWithoutReplacement(5, random.Random(1))
        syn.consume(ListView(make_results(3)))
        assert syn.valid_count == 3
        syn.consume(ListView([(100, 200), (101, 201)]))
        assert syn.valid_count == 5
        syn.consume(ListView([(i + 500, i) for i in range(50)]))
        assert syn.valid_count == 5
        assert syn.total_seen == 55

    def test_samples_are_distinct_subset(self):
        results = make_results(200)
        syn = FixedSizeWithoutReplacement(10, random.Random(2))
        # feed in chunks of varying sizes (views)
        pos = 0
        for chunk in (1, 5, 50, 144):
            syn.consume(ListView(results[pos:pos + chunk]))
            pos += chunk
        samples = syn.samples()
        assert len(samples) == 10
        assert len(set(samples)) == 10
        assert set(samples) <= set(results)

    def test_purge_and_reverse_index(self):
        syn = FixedSizeWithoutReplacement(5, random.Random(3))
        syn.consume(ListView(make_results(5)))
        target = syn.samples()[2]
        purged = syn.purge_tuple(0, target[0])
        assert purged == 1
        assert syn.valid_count == 4
        assert target not in syn.samples()
        assert syn.purge_tuple(0, target[0]) == 0

    def test_purge_multiple_samples_same_tuple(self):
        syn = FixedSizeWithoutReplacement(5, random.Random(3))
        # three results sharing the node-1 tuple 77
        view = [(1, 77), (2, 77), (3, 77), (4, 99)]
        syn.consume(ListView(view))
        assert syn.purge_tuple(1, 77) == 3
        assert syn.samples() == [(4, 99)]

    def test_add_redrawn_rejects_duplicates(self):
        syn = FixedSizeWithoutReplacement(3, random.Random(4))
        syn.consume(ListView(make_results(2)))
        assert not syn.add_redrawn(syn.samples()[0])
        assert syn.add_redrawn((500, 501))
        assert syn.valid_count == 3
        with pytest.raises(SynopsisError):
            syn.add_redrawn((600, 601))  # already full

    def test_rebuild_resets_state(self):
        syn = FixedSizeWithoutReplacement(3, random.Random(5))
        syn.consume(ListView(make_results(20)))
        syn.reset_for_rebuild()
        assert syn.valid_count == 0 and syn.total_seen == 0
        syn.consume(ListView(make_results(4)))
        assert syn.valid_count == 3 and syn.total_seen == 4

    def test_decrease_total_guard(self):
        syn = FixedSizeWithoutReplacement(3, random.Random(6))
        syn.consume(ListView(make_results(2)))
        with pytest.raises(SynopsisError):
            syn.decrease_total(5)

    def test_contains(self):
        syn = FixedSizeWithoutReplacement(3, random.Random(7))
        syn.consume(ListView(make_results(2)))
        assert syn.contains(syn.samples()[0])
        assert not syn.contains((123456, 0))


class TestFixedWithReplacement:
    def test_first_result_fills_all_slots(self):
        syn = FixedSizeWithReplacement(4, random.Random(1))
        syn.consume(ListView([(9, 9)]))
        assert syn.samples() == [(9, 9)] * 4

    def test_slot_count_constant(self):
        syn = FixedSizeWithReplacement(4, random.Random(2))
        for chunk in (make_results(3), make_results(50)):
            syn.consume(ListView(chunk))
        assert syn.valid_count == 4
        assert len(syn.slot_values()) == 4

    def test_purge_then_replenish_slot(self):
        syn = FixedSizeWithReplacement(3, random.Random(3))
        syn.consume(ListView([(7, 8)]))
        assert syn.purge_tuple(0, 7) == 3
        assert syn.valid_count == 0
        assert syn.empty_slots() == [0, 1, 2]
        syn.replenish_slot(0, (1, 2))
        assert syn.valid_count == 1
        with pytest.raises(SynopsisError):
            syn.replenish_slot(0, (3, 4))

    def test_duplicates_allowed(self):
        syn = FixedSizeWithReplacement(8, random.Random(4))
        syn.consume(ListView(make_results(3)))
        samples = syn.samples()
        assert len(samples) == 8
        assert len(set(samples)) <= 3


class TestBernoulli:
    def test_expected_size(self):
        rng = random.Random(5)
        syn = BernoulliSynopsis(0.2, rng)
        n = 5000
        syn.consume(ListView(make_results(n)))
        assert abs(syn.valid_count - n * 0.2) < 4 * (n * 0.2 * 0.8) ** 0.5
        assert syn.total_seen == n

    def test_p_one_keeps_everything(self):
        syn = BernoulliSynopsis(1.0, random.Random(6))
        syn.consume(ListView(make_results(20)))
        assert syn.valid_count == 20

    def test_each_result_selected_with_p(self):
        """Inclusion indicator of a FIXED position is Bernoulli(p) across
        independent runs."""
        p = 0.3
        hits = 0
        trials = 3000
        for t in range(trials):
            syn = BernoulliSynopsis(p, random.Random(t))
            syn.consume(ListView(make_results(10)))
            if (4, 1004) in syn.samples():
                hits += 1
        assert abs(hits / trials - p) < 0.04

    def test_purge(self):
        syn = BernoulliSynopsis(1.0, random.Random(7))
        syn.consume(ListView([(1, 5), (2, 5), (3, 6)]))
        assert syn.purge_tuple(1, 5) == 2
        assert syn.samples() == [(3, 6)]

    def test_skip_state_persists_across_views(self):
        """Selections must be identical whether results arrive as one view
        or split across many (the paper's persistent skip state)."""
        results = make_results(400)
        p = 0.13
        one = BernoulliSynopsis(p, random.Random(99))
        one.consume(ListView(results))
        many = BernoulliSynopsis(p, random.Random(99))
        pos = 0
        rng = random.Random(1)
        while pos < len(results):
            step = 1 + rng.randrange(17)
            many.consume(ListView(results[pos:pos + step]))
            pos += step
        assert one.samples() == many.samples()


class TestViewSplitInvariance:
    def test_without_replacement_split_invariant(self):
        """Same RNG seed => identical reservoir regardless of how the
        result stream is split into views (Algorithm 3's core claim)."""
        results = make_results(300)
        one = FixedSizeWithoutReplacement(7, random.Random(42))
        one.consume(ListView(results))
        many = FixedSizeWithoutReplacement(7, random.Random(42))
        rng = random.Random(2)
        pos = 0
        while pos < len(results):
            step = 1 + rng.randrange(23)
            many.consume(ListView(results[pos:pos + step]))
            pos += step
        assert one.samples() == many.samples()
        assert one.total_seen == many.total_seen

    def test_with_replacement_split_invariant(self):
        results = make_results(300)
        one = FixedSizeWithReplacement(5, random.Random(43))
        one.consume(ListView(results))
        many = FixedSizeWithReplacement(5, random.Random(43))
        rng = random.Random(3)
        pos = 0
        while pos < len(results):
            step = 1 + rng.randrange(23)
            many.consume(ListView(results[pos:pos + step]))
            pos += step
        assert one.slot_values() == many.slot_values()


class TestUniformity:
    def test_without_replacement_uniform(self):
        """Every result equally likely to be sampled: chi-square over many
        independent runs."""
        n, m, trials = 25, 5, 4000
        counts = Counter()
        results = make_results(n)
        for t in range(trials):
            syn = FixedSizeWithoutReplacement(m, random.Random(t))
            syn.consume(ListView(results))
            for s in syn.samples():
                counts[s] += 1
        stat = chi_square_uniform([counts[r] for r in results])
        assert stat < chi_square_threshold(n - 1)

    def test_with_replacement_uniform(self):
        n, m, trials = 20, 4, 3000
        counts = Counter()
        results = make_results(n)
        for t in range(trials):
            syn = FixedSizeWithReplacement(m, random.Random(t))
            syn.consume(ListView(results))
            for s in syn.samples():
                counts[s] += 1
        stat = chi_square_uniform([counts[r] for r in results])
        assert stat < chi_square_threshold(n - 1)
