"""Boundary-condition tests for spots where implementations switch modes.

* Vitter skips at the Algorithm X / Algorithm Z threshold (t = 22m):
  the drawn distribution must be the same on both sides of the switch.
* Benchmark harness edge cases (zero planned operations, empty streams).
* Reservoir rebuild exactly at the m >= J/2 boundary (§5.3).
"""

import random
from collections import Counter

import pytest

from repro.bench.harness import BenchRun, run_stream
from repro.sampling.reservoir import VitterSkipSampler

from conftest import chi_square_threshold


class TestVitterThreshold:
    M = 3
    THRESHOLD = VitterSkipSampler.THRESHOLD_FACTOR * M  # 66

    def exact_survival(self, m, t, cutoff):
        surv = [1.0]
        for s in range(1, cutoff + 1):
            surv.append(surv[-1] * (t + s - m) / (t + s))
        return surv

    @pytest.mark.parametrize("t_offset", [-1, 0, 1])
    def test_distribution_across_switch(self, t_offset):
        """Algorithm X is used at t <= 22m, Z above; both must draw from
        the same exact skip law."""
        t = self.THRESHOLD + t_offset
        rng = random.Random(17)
        sampler = VitterSkipSampler(self.M, rng)
        n = 8000
        draws = Counter(sampler.skip(t) for _ in range(n))
        cutoff = max(draws) + 1
        surv = self.exact_survival(self.M, t, cutoff)
        stat = 0.0
        buckets = 0
        tail_obs, tail_exp = n, float(n)
        for s in range(cutoff):
            expected = n * (surv[s] - surv[s + 1])
            if expected < 8:
                break
            stat += (draws.get(s, 0) - expected) ** 2 / expected
            tail_obs -= draws.get(s, 0)
            tail_exp -= expected
            buckets += 1
        if tail_exp > 8:
            stat += (tail_obs - tail_exp) ** 2 / tail_exp
            buckets += 1
        assert stat < chi_square_threshold(max(buckets - 1, 1)), t


class TestHarnessEdges:
    def test_empty_stream(self):
        class Dummy:
            def insert(self, alias, row):
                return 0

            def delete(self, alias, tid):
                pass

        run = run_stream(Dummy(), [], workload="empty")
        assert run.operations == 0
        assert not run.aborted
        assert run.progress == 1.0  # nothing planned, nothing pending

    def test_progress_with_zero_planned(self):
        run = BenchRun(engine="x", workload="w")
        assert run.progress == 1.0
        assert run.average_throughput == float("inf")


class TestRebuildBoundary:
    def test_rebuild_triggers_at_half_j(self):
        """With m >= J/2 after a purge, the engine must rebuild rather
        than rejection-sample (§5.3's 2m access bound)."""
        from repro import (Column, Database, SJoinEngine, SynopsisSpec,
                           TableSchema, parse_query)

        db = Database()
        db.create_table(TableSchema("r", [Column("a"), Column("b")]))
        db.create_table(TableSchema("s", [Column("a"), Column("b")]))
        query = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(4), seed=0)
        # J = 8 results, m = 4: exactly the m >= J/2 regime (2m >= J)
        for i in range(8):
            engine.insert("r", (i, i))
            engine.insert("s", (i, i))
        assert engine.total_results() == 8
        before = engine.stats.rebuilds
        victim = engine.raw_samples()[0]
        engine.delete("r", victim[0])
        assert engine.stats.rebuilds == before + 1
        assert engine.stats.redraws == 0
        assert len(engine.raw_samples()) == 4

    def test_redraw_used_when_j_large(self):
        from repro import (Column, Database, SJoinEngine, SynopsisSpec,
                           TableSchema, parse_query)

        db = Database()
        db.create_table(TableSchema("r", [Column("a"), Column("b")]))
        db.create_table(TableSchema("s", [Column("a"), Column("b")]))
        query = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(3), seed=0)
        # J = 40 >> 2m = 6: rejection re-draws, no rebuild
        for i in range(40):
            engine.insert("r", (i, i))
            engine.insert("s", (i, i))
        victim = engine.raw_samples()[0]
        before_rebuilds = engine.stats.rebuilds
        engine.delete("r", victim[0])
        assert engine.stats.rebuilds == before_rebuilds
        assert engine.stats.redraws >= 1
        assert len(engine.raw_samples()) == 3
