"""Public API surface: everything advertised must import and be real."""

import importlib

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"{name} in __all__ but missing"


def test_version():
    assert repro.__version__ == "2.0.0"


@pytest.mark.parametrize("module", [
    "repro.catalog", "repro.query", "repro.index", "repro.graph",
    "repro.sampling", "repro.core", "repro.datagen", "repro.bench",
    "repro.analytics", "repro.stats", "repro.cli",
    "repro.core.static_sampler", "repro.core.window",
    "repro.core.manager", "repro.core.serialize",
    "repro.core.stats_api",
    "repro.index.api", "repro.index.fenwick",
    "repro.index.skiplist", "repro.query.explain",
    "repro.bench.export",
    "repro.obs", "repro.obs.metrics", "repro.obs.names",
    "repro.obs.trace", "repro.obs.expo", "repro.obs.quality",
    "repro.obs.events",
    "repro.persist", "repro.persist.wal", "repro.persist.snapshot",
    "repro.persist.state", "repro.persist.runtime",
    "repro.persist.crashpoints",
    "repro.service", "repro.service.runtime", "repro.service.http",
    "repro.service.client",
    "repro.replicate", "repro.replicate.transport",
    "repro.replicate.shipper", "repro.replicate.follower",
    "repro.aqp", "repro.aqp.registry", "repro.aqp.estimation",
    "repro.aqp.audit",
])
def test_submodules_import(module):
    importlib.import_module(module)


def test_subpackage_all_exports_resolve():
    for module_name in ("repro.catalog", "repro.query", "repro.core",
                        "repro.sampling", "repro.datagen", "repro.bench",
                        "repro.analytics", "repro.stats", "repro.index",
                        "repro.graph", "repro.obs", "repro.persist",
                        "repro.service", "repro.replicate", "repro.aqp"):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name} missing"


def test_every_public_symbol_has_a_docstring():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_metric_name_catalogue_is_stable():
    """The metric names are a published contract (docs/observability.md);
    renaming one is an API break and must show up here."""
    from repro.obs import names

    assert names.ALL_METRIC_NAMES == (
        "engine.insert_ns", "engine.insert.graph_ns",
        "engine.insert.sample_ns", "engine.insert.enumerate_ns",
        "engine.delete_ns", "engine.delete.graph_ns",
        "engine.delete.replenish_ns",
        "graph.vertices_visited", "graph.index_refreshes",
        "graph.vertex_creations", "graph.vertex_removals",
        "graph.weight_recomputes", "graph.avl_rotations",
        "graph.index_maintenance_ops",
        "synopsis.skips_drawn", "synopsis.accepts", "synopsis.replaces",
        "synopsis.purges", "synopsis.redraws",
        "synopsis.redraw_rejections", "synopsis.rebuilds",
        "synopsis.size", "synopsis.total_results",
        "fk.assembles", "fk.assembly_drops", "fk.lookups",
        "fk.member_registrations",
        "persist.wal.appends", "persist.wal.bytes", "persist.wal.syncs",
        "persist.wal.rotations", "persist.wal.append_ns",
        "persist.snapshot.writes", "persist.snapshot.bytes",
        "persist.snapshot.write_ns",
        "persist.recovery.count", "persist.recovery.replayed_ops",
        "persist.recovery_ns",
        "trace.events", "trace.dropped", "trace.slow_ops",
        "quality.probe_rounds", "quality.probes_drawn",
        "quality.chi_square", "quality.ks_ratio", "quality.flagged",
        "quality.epoch_lag", "quality.staleness_seconds",
        "aqp.estimates", "aqp.estimate_ns", "aqp.audited",
        "aqp.relative_error", "aqp.coverage", "aqp.coverage_flagged",
        "events.emitted", "events.dropped",
        "replicate.ships", "replicate.ship_segments",
        "replicate.ship_snapshots", "replicate.ship_bytes",
        "replicate.ship_ns",
        "replicate.acked_lsn", "replicate.polls",
        "replicate.replayed_records", "replicate.replayed_ops",
        "replicate.replay_ns", "replicate.applied_lsn",
        "replicate.epoch_lag", "replicate.staleness_seconds",
        "replicate.lag_ms",
        "service.queue_depth", "service.epoch", "service.epoch_lag",
        "service.ops_applied", "service.ops_rejected",
        "service.ingest_errors",
        "service.batch_ops", "service.ingest_batch_ns", "service.read_ns",
    )
    assert len(set(names.ALL_METRIC_NAMES)) == len(names.ALL_METRIC_NAMES)
    assert names.table_insert_ns("ss") == "table.ss.insert_ns"
    assert names.table_delete_ns("ss") == "table.ss.delete_ns"
    assert names.manager_fanout("store_sales") == \
        "manager.store_sales.fanout"
    assert names.manager_insert_ns("t") == "manager.t.insert_ns"
    assert names.manager_delete_ns("t") == "manager.t.delete_ns"


def test_persist_public_surface_is_stable():
    """The repro.persist exports are a published contract: recovery
    tooling and the CI crash-matrix job import these names."""
    from repro import persist

    assert tuple(persist.__all__) == (
        "CrashPoint",
        "CrashPointInjector",
        "PersistentMaintainer",
        "PersistentManager",
        "SegmentInfo",
        "SnapshotInfo",
        "SnapshotStore",
        "WriteAheadLog",
        "capture_database",
        "capture_maintainer",
        "capture_manager",
        "has_state",
        "replay_maintainer_entry",
        "replay_manager_entry",
        "restore_database",
        "restore_maintainer",
        "restore_manager",
    )
    for name in persist.__all__:
        obj = getattr(persist, name)
        assert obj.__doc__, f"repro.persist.{name} lacks a docstring"
    # CrashPoint stands in for SIGKILL: production code catching the
    # library's error hierarchy must never swallow it
    from repro.errors import ReproError

    assert not issubclass(persist.CrashPoint, ReproError)


def test_maintainer_config_fields_are_stable():
    """MaintainerConfig is THE construction contract of the redesigned
    facade; adding a field is fine, renaming or dropping one is not."""
    import dataclasses

    from repro import MaintainerConfig

    fields = [f.name for f in dataclasses.fields(MaintainerConfig)]
    assert fields == ["spec", "engine", "seed", "obs", "index_backend",
                      "use_statistics", "name", "effective_spec",
                      "tracer", "quality"]
    config = MaintainerConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.engine = "sjoin"
    with pytest.raises(TypeError):  # keyword-only
        MaintainerConfig(None)


def test_service_public_surface_is_stable():
    """The serving layer's exports are a published contract."""
    from repro import service

    assert tuple(service.__all__) == (
        "SynopsisService",
        "ServiceConfig",
        "ReadView",
        "OVERFLOW_POLICIES",
        "ServiceHTTPServer",
        "LocalServiceClient",
    )
    assert service.OVERFLOW_POLICIES == ("block", "reject")
    import dataclasses

    fields = [f.name for f in dataclasses.fields(service.ServiceConfig)]
    assert fields == ["max_queue_ops", "max_batch_ops",
                      "overflow_policy", "block_timeout",
                      "drain_timeout", "obs", "tracer", "events"]


def test_replicate_public_surface_is_stable():
    """The replication layer's exports are a published contract: the CI
    replication job and follower deployments import these names."""
    from repro import replicate

    assert tuple(replicate.__all__) == (
        "DirectoryTransport",
        "FollowerService",
        "MANIFEST_NAME",
        "MANIFEST_VERSION",
        "ReplicationTransport",
        "WalShipper",
        "as_transport",
    )
    for name in replicate.__all__:
        obj = getattr(replicate, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"repro.replicate.{name} lacks a docstring"
    # follower rejections must be catchable both as service errors (the
    # HTTP layer's 4xx mapping) and as the library-wide base
    from repro.errors import (FollowerReadOnlyError, ReproError,
                              ReplicationError, ServiceError)

    assert issubclass(FollowerReadOnlyError, ServiceError)
    assert issubclass(ReplicationError, ReproError)


def test_every_public_exception_subclasses_repro_error():
    """Everything exported from repro.errors (except the base) must be
    catchable as ReproError — the single except-clause contract."""
    import inspect

    from repro import errors

    exported = [obj for _, obj in inspect.getmembers(errors, inspect.isclass)
                if obj.__module__ == "repro.errors"]
    assert len(exported) >= 15
    for cls in exported:
        assert issubclass(cls, errors.ReproError), cls
    # dual-inheritance shims: pre-redesign except-clauses keep working
    assert issubclass(errors.InvalidArgumentError, ValueError)
    assert issubclass(errors.IndexBackendError, ValueError)
    assert issubclass(errors.IndexKeyError, KeyError)
    # service errors share one intermediate base
    assert issubclass(errors.ServiceOverloadedError, errors.ServiceError)
    assert issubclass(errors.ServiceClosedError, errors.ServiceError)


def test_batch_first_surface_is_stable():
    """apply_batch is THE primary update entry point of the batch-first
    redesign: it must exist (with the same signature shape) on every
    applying layer, and BatchResult/OpOutcome must be exported from the
    package root."""
    import inspect

    from repro import BatchResult, OpOutcome  # noqa: F401 -- the contract
    from repro.core.maintainer import JoinSynopsisMaintainer
    from repro.core.manager import SynopsisManager
    from repro.core.serialize import SerializedMaintainer, SerializedManager
    from repro.persist import PersistentMaintainer, PersistentManager
    from repro.service import SynopsisService

    for cls in (JoinSynopsisMaintainer, SynopsisManager,
                SerializedMaintainer, SerializedManager,
                PersistentMaintainer, PersistentManager, SynopsisService):
        assert hasattr(cls, "apply_batch"), cls
        params = list(inspect.signature(cls.apply_batch).parameters)
        assert params[1] == "ops", cls
        # 2.0 removed the deprecated sequence shim everywhere
        assert not hasattr(cls, "insert_many"), cls


def test_retired_backend_registry_contract():
    """The skiplist backend is retired: the registry must reject it with
    an actionable message, but the module stays importable (see the
    submodule import matrix above) and persisted states that pinned it
    fall back to avl."""
    from repro.errors import IndexBackendError
    from repro.index.api import (available_backends, resolve_backend,
                                 retired_fallback)

    assert available_backends() == ("avl", "fenwick")
    with pytest.raises(IndexBackendError, match="retired"):
        resolve_backend("skiplist")
    assert retired_fallback("skiplist") == "avl"


def test_legacy_construction_kwargs_removed():
    """2.0 dropped the construction shims: legacy kwargs fail like any
    misspelled keyword, and a bare SynopsisSpec in the config slot is
    rejected with guidance."""
    from repro import (Column, Database, InvalidArgumentError,
                       JoinSynopsisMaintainer, MaintainerConfig,
                       SynopsisSpec, TableSchema)

    db = Database()
    db.create_table(TableSchema("r", [Column("a")]))
    db.create_table(TableSchema("s", [Column("a")]))
    sql = "SELECT * FROM r, s WHERE r.a = s.a"
    with pytest.raises(TypeError):
        JoinSynopsisMaintainer(db, sql, spec=SynopsisSpec.fixed_size(5))
    with pytest.raises(TypeError):
        JoinSynopsisMaintainer(db, sql, algorithm="sjoin")
    with pytest.raises(InvalidArgumentError):
        JoinSynopsisMaintainer(db, sql, SynopsisSpec.fixed_size(5))
    JoinSynopsisMaintainer(
        db, sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(5), seed=1))


def test_aqp_surface_is_stable():
    """The 2.0 SQL front door is a published contract: the registry
    types, the typed parse error with position info, the HTTP routes,
    and the local client's AQP methods."""
    import inspect

    from repro import aqp
    from repro.aqp import (AGGREGATES, QueryRegistry, RegisteredQuery,
                           Snapshot, estimate_from_snapshot)
    from repro.errors import ParseError, QueryParseError
    from repro.service.client import LocalServiceClient

    assert tuple(aqp.__all__) == (
        "AGGREGATES",
        "AccuracyAuditor",
        "AuditConfig",
        "AuditRecord",
        "QueryRegistry",
        "RegisteredQuery",
        "Snapshot",
        "estimate_from_snapshot",
    )
    assert AGGREGATES == ("count", "sum", "avg")
    # package-root exports
    assert repro.QueryRegistry is QueryRegistry
    assert repro.RegisteredQuery is RegisteredQuery
    assert repro.QueryParseError is QueryParseError
    # the typed parse error: subclasses ParseError, carries position info
    assert issubclass(QueryParseError, ParseError)
    for attr in ("position", "token", "sql"):
        assert attr in QueryParseError("x", position=0).__dict__, attr
    # registry surface
    for method in ("register", "get", "names", "describe_all"):
        assert callable(getattr(QueryRegistry, method)), method
    params = list(
        inspect.signature(QueryRegistry.register).parameters)
    assert params[1:3] == ["sql", "name"]
    for method in ("estimate", "explain", "describe"):
        assert callable(getattr(RegisteredQuery, method)), method
    params = list(
        inspect.signature(RegisteredQuery.estimate).parameters)
    assert params[1] == "agg"
    # estimation helpers
    assert list(inspect.signature(Snapshot).parameters)[:4] == [
        "family", "total", "results", "meta"]
    assert callable(estimate_from_snapshot)
    # local client parity with the HTTP routes
    for method in ("register_query", "estimate", "queries"):
        assert callable(getattr(LocalServiceClient, method)), method
