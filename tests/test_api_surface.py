"""Public API surface: everything advertised must import and be real."""

import importlib

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"{name} in __all__ but missing"


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize("module", [
    "repro.catalog", "repro.query", "repro.index", "repro.graph",
    "repro.sampling", "repro.core", "repro.datagen", "repro.bench",
    "repro.analytics", "repro.stats", "repro.cli",
    "repro.core.static_sampler", "repro.core.window",
    "repro.core.manager", "repro.core.serialize",
    "repro.index.skiplist", "repro.query.explain",
    "repro.bench.export",
])
def test_submodules_import(module):
    importlib.import_module(module)


def test_subpackage_all_exports_resolve():
    for module_name in ("repro.catalog", "repro.query", "repro.core",
                        "repro.sampling", "repro.datagen", "repro.bench",
                        "repro.analytics", "repro.stats", "repro.index",
                        "repro.graph"):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.{name} missing"


def test_every_public_symbol_has_a_docstring():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if isinstance(obj, type) or callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"
