"""Exact executor sanity tests (it is the oracle — check it against
hand-computable cases and itertools brute force)."""

import itertools

from repro import (
    Column,
    ComparisonOp,
    Database,
    JoinExecutor,
    JoinPredicate,
    JoinQuery,
    MultiTableFilter,
    RangeTable,
    TableSchema,
    parse_query,
)
from repro.query.predicates import FilterPredicate


def db_rs():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    db.load("r", [(1, 10), (2, 20), (1, 30)])
    db.load("s", [(1, 100), (3, 300), (1, 400)])
    return db


class TestBasics:
    def test_equi_join(self):
        db = db_rs()
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        got = sorted(JoinExecutor(db, q).results())
        assert got == [(0, 0), (0, 2), (2, 0), (2, 2)]

    def test_count_matches_results(self):
        db = db_rs()
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        ex = JoinExecutor(db, q)
        assert ex.count() == len(ex.results())

    def test_cross_product_single_no_predicates(self):
        db = db_rs()
        q = JoinQuery([RangeTable("r", "r")])
        got = JoinExecutor(db, q).results()
        assert got == [(0,), (1,), (2,)]

    def test_filters_applied(self):
        db = db_rs()
        q = parse_query(
            "SELECT * FROM r, s WHERE r.a = s.a AND r.x >= 30", db
        )
        got = sorted(JoinExecutor(db, q).results())
        assert got == [(2, 0), (2, 2)]

    def test_filters_can_be_excluded(self):
        db = db_rs()
        q = parse_query(
            "SELECT * FROM r, s WHERE r.a = s.a AND r.x >= 30", db
        )
        got = JoinExecutor(db, q, include_filters=False).results()
        assert len(got) == 4

    def test_residual_filters(self):
        db = db_rs()
        q = JoinQuery(
            [RangeTable("r", "r"), RangeTable("s", "s")],
            [JoinPredicate("r", "a", ComparisonOp.EQ, "s", "a")],
            multi_filters=[MultiTableFilter(
                inputs=(("r", "x"), ("s", "y")),
                predicate=lambda x, y: x + y > 150,
            )],
        )
        got = sorted(JoinExecutor(db, q).results())
        assert got == [(0, 2), (2, 2)]
        assert len(JoinExecutor(db, q, include_residual=False).results()) \
            == 4

    def test_deleted_tuples_excluded(self):
        db = db_rs()
        db.delete("r", 0)
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        got = sorted(JoinExecutor(db, q).results())
        assert got == [(2, 0), (2, 2)]

    def test_delta_results(self):
        db = db_rs()
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        got = sorted(JoinExecutor(db, q).delta_results("s", 0))
        assert got == [(0, 0), (2, 0)]


class TestAgainstBruteForce:
    def test_three_way_band_and_inequality(self, rng):
        db = Database()
        for name in ("u", "v", "w"):
            db.create_table(TableSchema(name, [Column("a"), Column("b")]))
        rows = {}
        for name in ("u", "v", "w"):
            rows[name] = [
                (rng.randrange(6), rng.randrange(6)) for _ in range(12)
            ]
            db.load(name, rows[name])
        q = parse_query(
            "SELECT * FROM u, v, w "
            "WHERE |u.a - v.a| <= 1 AND v.b <= 2*w.b + 1", db
        )
        got = set(JoinExecutor(db, q).results())
        expect = set()
        for (i, u), (j, v), (k, w) in itertools.product(
            enumerate(rows["u"]), enumerate(rows["v"]),
            enumerate(rows["w"]),
        ):
            if abs(u[0] - v[0]) <= 1 and v[1] <= 2 * w[1] + 1:
                expect.add((i, j, k))
        assert got == expect
