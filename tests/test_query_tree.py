"""Query tree construction: edges, cycle demotion, rooted traversals."""

import pytest

from repro import (
    BandPredicate,
    Column,
    ComparisonOp,
    Database,
    JoinPredicate,
    JoinQuery,
    PlanError,
    RangeTable,
    TableSchema,
)
from repro.query.query_tree import build_query_tree


def rts(*names):
    return [RangeTable(n, n) for n in names]


def eq(a, aa, b, ba):
    return JoinPredicate(a, aa, ComparisonOp.EQ, b, ba)


class TestEdges:
    def test_simple_chain(self):
        q = JoinQuery(rts("r", "s", "t"),
                      [eq("r", "a", "s", "a"), eq("s", "b", "t", "b")])
        tree = build_query_tree(q)
        assert len(tree.edges) == 2
        assert not tree.demoted
        assert tree.degree("s") == 2
        assert tree.degree("r") == 1

    def test_composite_equality_edge(self):
        q = JoinQuery(rts("r", "s"),
                      [eq("r", "a", "s", "a"), eq("r", "b", "s", "b")])
        tree = build_query_tree(q)
        (edge,) = tree.edges
        assert len(edge.eq_predicates) == 2
        assert edge.range_predicate is None
        assert edge.key_attrs_of("r") == ("a", "b")

    def test_mixed_edge_puts_range_last(self):
        q = JoinQuery(rts("r", "s"), [
            JoinPredicate("r", "b", ComparisonOp.LE, "s", "b"),
            eq("r", "a", "s", "a"),
        ])
        tree = build_query_tree(q)
        (edge,) = tree.edges
        assert len(edge.eq_predicates) == 1
        assert edge.range_predicate is not None
        assert edge.key_attrs_of("r") == ("a", "b")

    def test_second_range_predicate_demoted(self):
        q = JoinQuery(rts("r", "s"), [
            JoinPredicate("r", "a", ComparisonOp.LE, "s", "a"),
            JoinPredicate("r", "b", ComparisonOp.GE, "s", "b"),
        ])
        tree = build_query_tree(q)
        (edge,) = tree.edges
        assert edge.range_predicate is not None
        assert len(tree.demoted) == 1

    def test_edge_matches_composite(self):
        q = JoinQuery(rts("r", "s"), [
            eq("r", "a", "s", "a"),
            BandPredicate("r", "b", "s", "b", width=1),
        ])
        tree = build_query_tree(q)
        (edge,) = tree.edges
        assert edge.matches("r", (3, 5), (3, 6))
        assert not edge.matches("r", (3, 5), (4, 5))
        assert not edge.matches("r", (3, 5), (3, 7))

    def test_key_range_for_composite(self):
        q = JoinQuery(rts("r", "s"), [
            eq("r", "a", "s", "a"),
            BandPredicate("r", "b", "s", "b", width=2),
        ])
        tree = build_query_tree(q)
        (edge,) = tree.edges
        comp = edge.key_range_for("s", (7, 10))
        assert comp.prefix == (7,)
        assert comp.contains((7, 9))
        assert comp.contains((7, 12))
        assert not comp.contains((7, 13))
        assert not comp.contains((8, 10))

    def test_pure_equality_range_is_point(self):
        q = JoinQuery(rts("r", "s"), [eq("r", "a", "s", "a")])
        tree = build_query_tree(q)
        comp = tree.edges[0].key_range_for("s", (5,))
        assert comp.prefix == (5,)
        assert comp.last is None
        assert comp.contains((5,))
        assert not comp.contains((6,))


class TestCycles:
    def test_triangle_demotes_one_edge(self):
        q = JoinQuery(rts("r", "s", "t"), [
            eq("r", "a", "s", "a"),
            eq("s", "b", "t", "b"),
            eq("t", "c", "r", "c"),
        ])
        tree = build_query_tree(q)
        assert len(tree.edges) == 2
        assert len(tree.demoted) == 1
        # demotion keeps declaration order: the t-r edge closes the cycle
        assert set(tree.demoted[0].aliases) == {"t", "r"}

    def test_q1_style_cycle(self):
        """The intro's Q1: ss-sr (eq), sr-cs (eq), ss-cs (ineq) — the
        inequality edge closes the cycle and becomes a residual filter."""
        q = JoinQuery(rts("ss", "sr", "cs"), [
            eq("ss", "item", "sr", "item"),
            eq("ss", "ticket", "sr", "ticket"),
            eq("sr", "cust", "cs", "cust"),
            JoinPredicate("ss", "date", ComparisonOp.LE, "cs", "date"),
        ])
        tree = build_query_tree(q)
        assert len(tree.edges) == 2
        (residual,) = tree.demoted
        assert set(residual.aliases) == {"ss", "cs"}
        assert residual.matches((1, 2))
        assert not residual.matches((2, 1))

    def test_disconnected_rejected(self):
        q = JoinQuery(rts("r", "s", "t"), [eq("r", "a", "s", "a")])
        with pytest.raises(PlanError):
            build_query_tree(q)

    def test_single_table_allowed(self):
        tree = build_query_tree(JoinQuery(rts("r")))
        assert not tree.edges


class TestRooted:
    def make_star(self):
        # s in the middle; r, t, u leaves
        q = JoinQuery(rts("r", "s", "t", "u"), [
            eq("r", "a", "s", "a"),
            eq("s", "b", "t", "b"),
            eq("s", "c", "u", "c"),
        ])
        return build_query_tree(q)

    def test_parents_and_children(self):
        tree = self.make_star()
        rooted = tree.rooted_at("r")
        assert rooted.parent["r"] is None
        assert rooted.parent["s"] == "r"
        assert rooted.parent["t"] == "s"
        kids = [alias for alias, _ in rooted.children["s"]]
        assert set(kids) == {"t", "u"}

    def test_preorder_parents_first(self):
        tree = self.make_star()
        rooted = tree.rooted_at("t")
        order = rooted.preorder
        assert order[0] == "t"
        for alias in order[1:]:
            assert order.index(rooted.parent[alias]) < order.index(alias)

    def test_subtree_aliases(self):
        tree = self.make_star()
        rooted = tree.rooted_at("r")
        assert set(rooted.subtree_aliases("s")) == {"s", "t", "u"}
        assert rooted.subtree_aliases("u") == ("u",)

    def test_join_attrs_dedup(self):
        # s joins r on a and t on a as well: vertex key has one 'a'
        q = JoinQuery(rts("r", "s", "t"), [
            eq("r", "x", "s", "a"),
            eq("s", "a", "t", "y"),
        ])
        tree = build_query_tree(q)
        assert tree.join_attrs_of("s") == ("a",)

    def test_unknown_root_rejected(self):
        from repro.errors import QueryError
        tree = self.make_star()
        with pytest.raises(QueryError):
            tree.rooted_at("nope")
