"""Integration tests: the paper's queries, tiny scale, all engines,
cross-checked against the exact executor at the end of the stream."""

import pytest

from repro import MaintainerConfig
from repro import (
    JoinExecutor,
    JoinSynopsisMaintainer,
    SynopsisSpec,
    parse_query,
)
from repro.datagen.linear_road import LinearRoadConfig, setup_qb
from repro.datagen.tpcds import TpcdsScale, setup_query
from repro.datagen.workload import DeleteOldest, StreamPlayer, Insert
from repro.datagen.workload import interleave_deletions

ALGOS = ("sjoin", "sjoin-opt", "sj")


@pytest.mark.parametrize("name", ["QX", "QY", "QZ"])
@pytest.mark.parametrize("algo", ALGOS)
def test_tpcds_query_insert_only(name, algo):
    setup = setup_query(name, TpcdsScale.tiny(), seed=0)
    maintainer = JoinSynopsisMaintainer(
        setup.db, setup.sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(40), engine=algo, seed=7))
    player = StreamPlayer(maintainer)
    player.run(setup.preload)
    player.run(setup.stream)
    exact = set(JoinExecutor(setup.db, maintainer.query).results())
    assert maintainer.total_results() == len(exact)
    synopsis = set(maintainer.synopsis())
    assert synopsis <= exact
    assert len(synopsis) == min(40, len(exact))


@pytest.mark.parametrize("algo", ["sjoin-opt", "sj"])
def test_qy_with_deletions(algo):
    setup = setup_query("QY", TpcdsScale.tiny(), seed=1)
    inserts = [e for e in setup.stream if isinstance(e, Insert)]
    events = interleave_deletions(
        inserts, delete_every={"ss": 30, "c2": 20},
        delete_count={"ss": 6, "c2": 2},
    )
    maintainer = JoinSynopsisMaintainer(
        setup.db, setup.sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(25), engine=algo, seed=3))
    player = StreamPlayer(maintainer)
    player.run(setup.preload)
    player.run(events)
    exact = set(JoinExecutor(setup.db, maintainer.query).results())
    assert maintainer.total_results() == len(exact)
    synopsis = set(maintainer.synopsis())
    assert synopsis <= exact
    assert len(synopsis) == min(25, len(exact))


@pytest.mark.parametrize("algo", ALGOS)
@pytest.mark.parametrize("d", [2, 15])
def test_qb_band_join_sliding_window(algo, d):
    setup = setup_qb(d, LinearRoadConfig.tiny(), seed=0)
    maintainer = JoinSynopsisMaintainer(
        setup.db, setup.sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(30), engine=algo, seed=5))
    StreamPlayer(maintainer).run(setup.events)
    exact = set(JoinExecutor(setup.db, maintainer.query).results())
    assert maintainer.total_results() == len(exact)
    synopsis = set(maintainer.synopsis())
    assert synopsis <= exact
    assert len(synopsis) == min(30, len(exact))


def test_all_algorithms_agree_on_j():
    """J is deterministic (independent of sampling seed/algorithm)."""
    totals = {}
    for algo in ALGOS:
        setup = setup_query("QX", TpcdsScale.tiny(), seed=2)
        m = JoinSynopsisMaintainer(
            setup.db, setup.sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), engine=algo, seed=algo.__hash__() % 1000))
        p = StreamPlayer(m)
        p.run(setup.preload)
        p.run(setup.stream)
        totals[algo] = m.total_results()
    assert len(set(totals.values())) == 1


def test_synopsis_types_on_qy():
    setup = setup_query("QY", TpcdsScale.tiny(), seed=3)
    for spec in (SynopsisSpec.fixed_size(20),
                 SynopsisSpec.with_replacement(20),
                 SynopsisSpec.bernoulli(0.02)):
        setup = setup_query("QY", TpcdsScale.tiny(), seed=3)
        m = JoinSynopsisMaintainer(
            setup.db, setup.sql, MaintainerConfig(spec=spec, engine="sjoin-opt", seed=9))
        p = StreamPlayer(m)
        p.run(setup.preload)
        p.run(setup.stream)
        exact = set(JoinExecutor(setup.db, m.query).results())
        assert set(m.engine.synopsis_results()) <= exact
