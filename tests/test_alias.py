"""WalkerAlias unit tests: construction, distribution, state parity.

Satellite of the synopsis-family PR: the alias table joins the public
sampling surface, so it gets direct tests instead of riding along
inside the Bernoulli synopsis suite.
"""

import random

import pytest

from repro import InvalidArgumentError, WalkerAlias


def chi_square(counts, expected):
    return sum((c - e) ** 2 / e for c, e in zip(counts, expected) if e > 0)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(InvalidArgumentError):
            WalkerAlias([])

    def test_rejects_negative_weight(self):
        with pytest.raises(InvalidArgumentError):
            WalkerAlias([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(InvalidArgumentError):
            WalkerAlias([0.0, 0.0])

    def test_len(self):
        assert len(WalkerAlias([3, 1, 2])) == 3

    def test_single_outcome(self):
        table = WalkerAlias([7.0])
        rng = random.Random(0)
        assert all(table.sample(rng) == 0 for _ in range(100))

    def test_zero_weight_outcome_never_drawn(self):
        table = WalkerAlias([1.0, 0.0, 1.0])
        rng = random.Random(1)
        assert all(table.sample(rng) != 1 for _ in range(2000))


class TestDistribution:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_weights(self, seed):
        weights = [5.0, 1.0, 3.0, 1.0]
        table = WalkerAlias(weights)
        rng = random.Random(seed)
        n = 20000
        counts = [0] * len(weights)
        for _ in range(n):
            counts[table.sample(rng)] += 1
        total = sum(weights)
        expected = [n * w / total for w in weights]
        # chi-square with 3 dof: 16.27 is the 0.1% critical value
        assert chi_square(counts, expected) < 16.27

    def test_uniform_weights_uniform_draws(self):
        table = WalkerAlias([1] * 8)
        rng = random.Random(3)
        counts = [0] * 8
        for _ in range(8000):
            counts[table.sample(rng)] += 1
        expected = [1000.0] * 8
        # 7 dof: 24.32 is the 0.1% critical value
        assert chi_square(counts, expected) < 24.32


class TestStateParity:
    def test_round_trip_preserves_draw_stream(self):
        table = WalkerAlias([2.0, 5.0, 1.0])
        state = table.state_dict()
        restored = WalkerAlias([1.0])  # overwritten by load_state
        restored.load_state(state)
        a, b = random.Random(42), random.Random(42)
        assert [table.sample(a) for _ in range(500)] == \
            [restored.sample(b) for _ in range(500)]

    def test_state_dict_is_plain_data(self):
        state = WalkerAlias([1, 2, 3]).state_dict()
        assert set(state) == {"prob", "alias"}
        assert all(isinstance(p, float) for p in state["prob"])
        assert all(isinstance(a, int) for a in state["alias"])

    def test_load_state_detached_from_source(self):
        table = WalkerAlias([1.0, 1.0])
        state = table.state_dict()
        state["prob"][0] = 0.5  # mutating the snapshot ...
        assert table.state_dict()["prob"][0] == 1.0  # ... not the table

    def test_load_rejects_length_mismatch(self):
        table = WalkerAlias([1.0])
        with pytest.raises(InvalidArgumentError):
            table.load_state({"prob": [1.0, 1.0], "alias": [0]})

    def test_load_rejects_empty(self):
        table = WalkerAlias([1.0])
        with pytest.raises(InvalidArgumentError):
            table.load_state({"prob": [], "alias": []})

    def test_load_rejects_out_of_range_prob(self):
        table = WalkerAlias([1.0])
        with pytest.raises(InvalidArgumentError):
            table.load_state({"prob": [1.5], "alias": [0]})

    def test_load_rejects_out_of_range_alias(self):
        table = WalkerAlias([1.0])
        with pytest.raises(InvalidArgumentError):
            table.load_state({"prob": [1.0], "alias": [3]})
