"""Plan-explanation tests."""

from repro import Column, Database, TableSchema, parse_query
from repro.datagen.tpcds import setup_query
from repro.query.explain import explain_plan
from repro.query.planner import plan_query


def test_simple_plan_explains():
    db = Database()
    db.create_table(TableSchema("r", [Column("a")]))
    db.create_table(TableSchema("s", [Column("a"), Column("b")]))
    db.create_table(TableSchema("t", [Column("b")]))
    q = parse_query(
        "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b", db)
    text = explain_plan(plan_query(q, db))
    assert "plan nodes (3)" in text
    assert "base table r" in text
    assert "r -- s" in text
    assert "aggregate indexes (4)" in text
    assert "w_full" in text
    assert "direct" in text


def test_collapsed_plan_explains():
    setup = setup_query("QY", seed=0)
    q = parse_query(setup.sql, setup.db)
    text = explain_plan(plan_query(q, setup.db, fk_optimize=True))
    assert "SJoin-opt" in text
    assert "combined of ss (anchor)" in text
    assert "via c1" in text
    assert "anchor -> node ss__c1__d1" in text
    assert "member -> node" in text


def test_residual_filters_listed():
    db = Database()
    for name in ("r", "s", "t"):
        db.create_table(TableSchema(name, [Column("a"), Column("b")]))
    q = parse_query(
        "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b "
        "AND t.a <= r.b", db)
    text = explain_plan(plan_query(q, db))
    assert "residual filters" in text
    assert "t.a <= r.b" in text
