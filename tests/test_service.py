"""The concurrent serving layer: correctness under real thread contention.

The two headline properties:

* **Differential** — N writer threads racing through the service must
  leave *exactly* the synopsis a serial replay of the same (recorded)
  op sequence leaves: the single-writer ingest loop is a
  serialization point, so concurrency must change nothing.
* **Snapshot isolation** — readers polling views while writers submit
  multi-op batches must never observe a half-applied batch.

The differential stress test also exports its read-latency percentiles
to ``BENCH_service.json`` (override with ``$REPRO_BENCH_SERVICE_EXPORT``).
"""

import json
import os
import threading
import time

import pytest

from repro import (
    ApplyResult,
    Column,
    Database,
    DeleteOp,
    InsertOp,
    InvalidArgumentError,
    JoinSynopsisMaintainer,
    MaintainerConfig,
    MetricsRegistry,
    ReadView,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    SynopsisManager,
    SynopsisService,
    SynopsisSpec,
    TableSchema,
)
from repro.obs import names as metric_names

SQL = "SELECT * FROM r, s WHERE r.a = s.a"

EXPORT_PATH = os.environ.get("REPRO_BENCH_SERVICE_EXPORT",
                             "BENCH_service.json")


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


def make_maintainer(db=None, size=200, seed=42):
    return JoinSynopsisMaintainer(
        db if db is not None else make_db(), SQL,
        MaintainerConfig(spec=SynopsisSpec.fixed_size(size), seed=seed))


class RecordingTarget:
    """Record the exact op order the ingest thread applies.

    Only the single ingest thread calls :meth:`apply_batch`, so the log
    needs no lock; it *is* the serialization the service imposed.
    """

    def __init__(self, inner):
        self.inner = inner
        self.log = []

    def apply_batch(self, ops):
        ops = list(ops)
        self.log.extend(ops)
        return self.inner.apply_batch(ops)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestDifferential:
    WRITERS = 4
    READERS = 4
    OPS_PER_WRITER = 2500  # 4 x 2500 = 10k ops (the acceptance floor)

    def test_concurrent_equals_serial_replay(self):
        recording = RecordingTarget(make_maintainer())
        obs = MetricsRegistry()
        service = SynopsisService(
            recording, ServiceConfig(max_batch_ops=64, obs=obs))
        stop = threading.Event()
        failures = []

        def writer(idx):
            try:
                my_tids = []  # (alias, tid) acknowledged as applied
                n = 0
                while n < self.OPS_PER_WRITER:
                    step = n % 10
                    alias = "r" if (n + idx) % 2 == 0 else "s"
                    key = (idx * 31 + n) % 50
                    if step == 9 and my_tids:
                        alias, tid = my_tids.pop()
                        service.delete(alias, tid)
                        n += 1
                    elif step == 5:
                        # a multi-op batch: must stay atomic for readers
                        take = min(4, self.OPS_PER_WRITER - n)
                        ops = [InsertOp(alias, (key + j, idx)) for j in
                               range(take)]
                        result = service.submit(ops)
                        assert isinstance(result, ApplyResult)
                        my_tids.extend(
                            (alias, t) for t in result.tids
                            if t is not None and t >= 0)
                        n += take
                    else:
                        tid = service.insert(alias, (key, idx))
                        if tid >= 0:
                            my_tids.append((alias, tid))
                        n += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        read_counts = [0] * self.READERS

        def reader(idx):
            try:
                last_epoch = -1
                while not stop.is_set():
                    view = service.view()
                    assert isinstance(view, ReadView)
                    assert view.epoch >= last_epoch, "epoch went backwards"
                    last_epoch = view.epoch
                    sample = service.synopsis(limit=16)
                    assert len(sample) <= 16
                    assert service.total_results(None) >= 0
                    read_counts[idx] += 1
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(self.WRITERS)]
        readers = [threading.Thread(target=reader, args=(i,))
                   for i in range(self.READERS)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=600)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert not failures, failures[:3]
        service.close()

        applied = len(recording.log)
        assert applied >= self.WRITERS * self.OPS_PER_WRITER
        assert all(count > 0 for count in read_counts)

        # serial replay of the recorded order on a fresh maintainer:
        # deterministic TIDs + seeded RNG => bit-identical synopsis
        replayed = make_maintainer()
        replayed.apply(recording.log)
        assert replayed.total_results() == \
            recording.inner.total_results()
        assert replayed.synopsis() == recording.inner.synopsis()
        assert replayed.engine.raw_samples() == \
            recording.inner.engine.raw_samples()

        # final view reflects every acknowledged op
        final = service.view()
        assert final.synopses[None] == tuple(recording.inner.synopsis())

        self._export(obs, applied, sum(read_counts))

    def _export(self, obs, applied_ops, total_reads):
        read_ns = obs.histogram(metric_names.SERVICE_READ_NS).snapshot()
        batch = obs.histogram(metric_names.SERVICE_BATCH_OPS).snapshot()
        payload = {
            "benchmark": "service_concurrent_stress",
            "writers": self.WRITERS,
            "readers": self.READERS,
            "ops_applied": applied_ops,
            "reads": total_reads,
            "read_ns": {k: read_ns.get(k) for k in
                        ("count", "mean", "p50", "p95", "p99")},
            "ingest_batch_ops": {k: batch.get(k) for k in
                                 ("count", "mean", "p50", "p95", "p99")},
        }
        with open(EXPORT_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


class TestSnapshotIsolation:
    def test_readers_never_see_half_a_batch(self):
        """Each submission pairs one r-row with one s-row on a unique
        key, so in every *consistent* state: inserts is even and the
        join count is exactly inserts/2.  A view built mid-batch would
        break both."""
        service = SynopsisService(
            make_maintainer(size=50),
            ServiceConfig(max_batch_ops=16))
        stop = threading.Event()
        failures = []
        PAIRS = 400

        def writer(idx):
            try:
                for n in range(PAIRS):
                    key = idx * PAIRS + n  # unique join key per pair
                    service.submit([InsertOp("r", (key, idx)),
                                    InsertOp("s", (key, idx))])
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        views_checked = [0]

        def reader():
            try:
                while not stop.is_set():
                    view = service.view()
                    inserts = view.stats.metrics["inserts"]
                    assert inserts % 2 == 0, \
                        f"half-applied batch visible: {inserts} inserts"
                    assert view.total_results[None] == inserts // 2
                    assert len(view.synopses[None]) == \
                        min(inserts // 2, 50)
                    views_checked[0] += 1
            except BaseException as exc:  # noqa: BLE001
                failures.append(exc)

        writers = [threading.Thread(target=writer, args=(i,))
                   for i in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=300)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        service.close()
        assert not failures, failures[:3]
        assert views_checked[0] > 0
        assert service.total_results() == 2 * PAIRS


class SlowTarget:
    """Maintainer wrapper whose apply_batch() stalls — fills the queue."""

    def __init__(self, inner, delay=0.05):
        self.inner = inner
        self.delay = delay

    def apply_batch(self, ops):
        time.sleep(self.delay)
        return self.inner.apply_batch(ops)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestBackpressure:
    def test_reject_policy_raises_when_full(self):
        service = SynopsisService(
            SlowTarget(make_maintainer()),
            ServiceConfig(max_queue_ops=4, max_batch_ops=1,
                          overflow_policy="reject"))
        try:
            with pytest.raises(ServiceOverloadedError):
                for n in range(200):
                    service.submit([InsertOp("r", (n, 0))], wait=False)
        finally:
            service.close()

    def test_block_policy_times_out(self):
        service = SynopsisService(
            SlowTarget(make_maintainer(), delay=0.2),
            ServiceConfig(max_queue_ops=2, max_batch_ops=1,
                          overflow_policy="block", block_timeout=0.05))
        try:
            with pytest.raises(ServiceOverloadedError,
                               match="timed out"):
                for n in range(50):
                    service.submit([InsertOp("r", (n, 0))], wait=False)
        finally:
            service.close()

    def test_block_policy_eventually_admits(self):
        service = SynopsisService(
            SlowTarget(make_maintainer(), delay=0.01),
            ServiceConfig(max_queue_ops=2, max_batch_ops=1,
                          overflow_policy="block"))
        for n in range(10):  # 5x the queue bound; every op must land
            service.submit([InsertOp("r", (n, 0))], wait=False)
        service.close()  # drains
        assert service.service_metrics()["applied_ops"] == 10


class TestLifecycle:
    def test_close_drains_pending_writes(self):
        service = SynopsisService(
            SlowTarget(make_maintainer(), delay=0.01),
            ServiceConfig(max_batch_ops=1))
        for n in range(20):
            service.submit([InsertOp("r", (n, 0))], wait=False)
        service.close(drain=True)
        assert service.service_metrics()["applied_ops"] == 20
        assert service.healthz()["status"] == "closed"

    def test_close_without_drain_discards(self):
        service = SynopsisService(
            SlowTarget(make_maintainer(), delay=0.05),
            ServiceConfig(max_batch_ops=1))
        for n in range(20):
            service.submit([InsertOp("r", (n, 0))], wait=False)
        service.close(drain=False)
        assert service.service_metrics()["applied_ops"] < 20

    def test_writes_after_close_rejected(self):
        service = SynopsisService(make_maintainer())
        service.close()
        with pytest.raises(ServiceClosedError):
            service.insert("r", (1, 1))
        with pytest.raises(ServiceClosedError):
            service.submit([DeleteOp("r", 0)])

    def test_reads_survive_close(self):
        service = SynopsisService(make_maintainer())
        service.insert("r", (1, 1))
        service.insert("s", (1, 2))
        service.close()
        assert service.total_results() == 1
        assert service.synopsis() == [(0, 0)]

    def test_context_manager(self):
        with SynopsisService(make_maintainer()) as service:
            service.insert("r", (1, 1))
        assert service.closed

    def test_ingest_error_propagates_and_service_survives(self):
        with SynopsisService(make_maintainer()) as service:
            with pytest.raises(Exception):
                service.delete("r", 12345)  # no such tuple
            assert service.insert("r", (1, 1)) == 0
            assert service.service_metrics()["ingest_errors"] == 1


class TestManagerMode:
    def test_named_reads_and_register(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=3))
        manager.register(
            "q", SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        with SynopsisService(manager) as service:
            service.insert("r", (1, 1))
            service.insert("s", (1, 2))
            assert service.total_results("q") == 1
            assert service.synopsis("q") == [(0, 0)]
            # registering through the service is serialized with ingest
            service.register(
                "q2", SQL,
                MaintainerConfig(spec=SynopsisSpec.fixed_size(5)))
            service.insert("r", (2, 2))
            assert "q2" in service.view().synopses

    def test_unknown_name_is_typed_error(self):
        with SynopsisService(SynopsisManager(make_db())) as service:
            with pytest.raises(ServiceError, match="no query 'nope'"):
                service.synopsis("nope")

    def test_maintainer_service_rejects_register(self):
        with SynopsisService(make_maintainer()) as service:
            with pytest.raises(ServiceError):
                service.register("q", SQL)


class TestCheckpointWhileServing:
    def test_checkpoint_between_batches_and_recover(self, tmp_path):
        from repro.persist import PersistentMaintainer

        directory = str(tmp_path / "state")
        pm = PersistentMaintainer.create(
            make_db(), SQL, directory,
            config=MaintainerConfig(spec=SynopsisSpec.fixed_size(20),
                                    seed=9))
        with SynopsisService(pm) as service:
            stop = threading.Event()
            failures = []

            def writer():
                try:
                    for n in range(200):
                        service.submit([InsertOp("r", (n % 20, n)),
                                        InsertOp("s", (n % 20, n))])
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)

            thread = threading.Thread(target=writer)
            thread.start()
            paths = [service.checkpoint() for _ in range(3)]
            thread.join(timeout=300)
            stop.set()
            assert not failures, failures[:1]
            assert all(paths)
            final_total = service.total_results()
            final_synopsis = service.synopsis()
        pm.close()

        recovered = PersistentMaintainer.recover(directory)
        try:
            assert recovered.total_results() == final_total
            assert recovered.synopsis() == final_synopsis
        finally:
            recovered.close()

    def test_checkpoint_on_plain_maintainer_is_typed_error(self):
        with SynopsisService(make_maintainer()) as service:
            with pytest.raises(ServiceError, match="no checkpoint"):
                service.checkpoint()


class TestReadYourWrites:
    def test_ack_implies_visible(self):
        with SynopsisService(make_maintainer()) as service:
            for n in range(50):
                service.submit([InsertOp("r", (n, 0)),
                                InsertOp("s", (n, 0))])
                # the covering view must already be published
                assert service.total_results() == n + 1

    def test_empty_submit_is_noop(self):
        with SynopsisService(make_maintainer()) as service:
            result = service.submit([])
            assert isinstance(result, ApplyResult)
            assert result.tids == ()
            assert service.submit([], wait=False) is None


class BrokenReadTarget:
    """Maintainer wrapper whose reads fail on demand — the view builder
    blows up after an otherwise-successful apply()."""

    def __init__(self, inner):
        self.inner = inner
        self.broken = False

    def synopsis(self):
        if self.broken:
            raise RuntimeError("target unreadable")
        return self.inner.synopsis()

    def synopsis_entries(self):
        if self.broken:
            raise RuntimeError("target unreadable")
        return self.inner.synopsis_entries()

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestReviewRegressions:
    def test_control_submissions_do_not_leak_queue_accounting(self):
        # every register() used to leave one phantom op in _queued_ops;
        # with a small bound the phantom ops eventually rejected real
        # writes against an empty queue
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=1))
        config = ServiceConfig(max_queue_ops=4, overflow_policy="reject")
        with SynopsisService(manager, config) as service:
            for n in range(8):
                service.register(
                    f"q{n}", SQL,
                    MaintainerConfig(spec=SynopsisSpec.fixed_size(5)))
            assert service.queue_depth == 0
            assert service.healthz()["epoch_lag_ops"] == 0
            # a batch as large as the bound must still be admitted
            service.submit([InsertOp("r", (n, n)) for n in range(4)])
            assert service.queue_depth == 0

    def test_negative_limit_is_typed_error(self):
        with SynopsisService(make_maintainer()) as service:
            service.insert("r", (1, 1))
            service.insert("s", (1, 2))
            with pytest.raises(InvalidArgumentError, match="limit"):
                service.synopsis(limit=-1)
            with pytest.raises(InvalidArgumentError, match="limit"):
                service.synopsis_payload(limit=-1)
            assert service.synopsis(limit=0) == []

    def test_fatal_publish_error_fails_fast_not_silent(self):
        target = BrokenReadTarget(make_maintainer())
        service = SynopsisService(target)
        service.insert("r", (1, 1))
        target.broken = True
        # apply() succeeds but the post-batch view build raises: the
        # submitter must get the error instead of hanging forever
        with pytest.raises(RuntimeError, match="unreadable"):
            service.insert("s", (1, 2))
        assert service.healthz()["status"] == "failed"
        assert "last_error" in service.healthz()
        # later writes are rejected with a typed error, not enqueued
        with pytest.raises(ServiceError, match="ingest loop died"):
            service.insert("r", (2, 2))
        # reads keep answering from the last good view
        assert service.total_results() == 0
        service.close()

    def test_close_drain_timeout_unblocks_queued_waiters(self):
        service = SynopsisService(
            SlowTarget(make_maintainer(), delay=1.0),
            ServiceConfig(max_batch_ops=1, drain_timeout=0.05))
        # occupy the ingest thread with one slow batch
        service.submit([InsertOp("r", (0, 0))], wait=False)
        outcomes = []

        def waiter():
            try:
                service.submit([InsertOp("r", (1, 0))])
                outcomes.append("applied")
            except ServiceClosedError:
                outcomes.append("failed")

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.2)  # let the waiter enqueue behind the slow batch
        service.close(drain=True)
        thread.join(timeout=10)
        assert not thread.is_alive(), "queued waiter hung after close()"
        assert outcomes == ["failed"]
        # the service must not claim a clean close while the ingest
        # thread is still applying
        if service._thread.is_alive():
            assert service.healthz()["status"] == "draining"
        service._thread.join(timeout=10)
        assert service.healthz()["status"] == "closed"
