"""SJ baseline tests: correctness and its characteristic costs."""

import random

import pytest

from repro import (
    JoinExecutor,
    SymmetricJoinEngine,
    SynopsisSpec,
    parse_query,
)
from repro.catalog.database import Database

from conftest import make_tables, random_query, random_row


def two_table_engine(spec=None, seed=0):
    db = Database()
    make_tables(db, [("r", 2), ("s", 2)])
    query = parse_query("SELECT * FROM r, s WHERE r.c0 = s.c0", db)
    return db, SymmetricJoinEngine(
        db, query, spec or SynopsisSpec.fixed_size(5), seed=seed
    )


class TestCorrectness:
    def test_j_matches_exact(self):
        db, engine = two_table_engine()
        for i in range(5):
            engine.insert("r", (i % 2, i))
            engine.insert("s", (i % 2, i))
        exact = JoinExecutor(db, engine.query).count()
        assert engine.total_results() == exact

    def test_random_ops_match_exact(self):
        rng = random.Random(3)
        db, engine = two_table_engine(seed=2)
        live = {"r": [], "s": []}
        for _ in range(120):
            if rng.random() < 0.3 and any(live.values()):
                alias = rng.choice([a for a in live if live[a]])
                tid = live[alias].pop(rng.randrange(len(live[alias])))
                engine.delete(alias, tid)
            else:
                alias = rng.choice(["r", "s"])
                tid = engine.insert(alias, random_row(rng, 2, 4))
                live[alias].append(tid)
        exact = set(JoinExecutor(db, engine.query).results())
        assert engine.total_results() == len(exact)
        assert set(engine.raw_samples()) <= exact
        assert len(engine.raw_samples()) == min(5, len(exact))

    def test_multiway_random_query(self, rng):
        db, query = random_query(rng, 3)
        engine = SymmetricJoinEngine(db, query, SynopsisSpec.fixed_size(6),
                                     seed=1)
        for _ in range(60):
            alias = rng.choice(list(query.aliases))
            ncols = len(db.table(query.range_table(alias).table_name)
                        .schema.columns)
            engine.insert(alias, random_row(rng, ncols, 4))
        exact = set(JoinExecutor(db, query, include_filters=False,
                                 include_residual=False).results())
        assert engine.total_results() == len(exact)
        assert set(engine.raw_samples()) <= exact

    def test_bernoulli_no_rebuild_on_delete(self):
        db, engine = two_table_engine(SynopsisSpec.bernoulli(0.5))
        for i in range(10):
            engine.insert("r", (1, i))
        engine.insert("s", (1, 0))
        before = engine.stats.full_recomputes
        engine.delete("r", 0)
        assert engine.stats.full_recomputes == before

    def test_pre_filters_respected(self):
        db = Database()
        make_tables(db, [("r", 2), ("s", 2)])
        query = parse_query(
            "SELECT * FROM r, s WHERE r.c0 = s.c0 AND r.c1 < 5", db
        )
        engine = SymmetricJoinEngine(db, query, SynopsisSpec.fixed_size(5),
                                     seed=0)
        assert engine.insert("r", (1, 9)) == -1
        assert engine.stats.filtered_inserts == 1


class TestCharacteristicCosts:
    def test_insert_enumerates_full_delta(self):
        """SJ touches one tuple per partial join result — the cost SJoin
        avoids (§4.4)."""
        db, engine = two_table_engine()
        for i in range(20):
            engine.insert("s", (1, i))
        before = engine.stats.tuples_accessed
        engine.insert("r", (1, 0))  # joins all 20 s-tuples
        assert engine.stats.tuples_accessed - before == 20

    def test_fixed_size_delete_triggers_full_recompute(self):
        db, engine = two_table_engine(SynopsisSpec.fixed_size(2))
        for i in range(6):
            engine.insert("r", (1, i))
        engine.insert("s", (1, 0))
        assert engine.stats.full_recomputes == 0
        # delete a sampled tuple -> purge -> rebuild
        sample = engine.raw_samples()[0]
        engine.delete("r", sample[0])
        assert engine.stats.full_recomputes == 1
        exact = set(JoinExecutor(db, engine.query).results())
        assert set(engine.raw_samples()) <= exact
        assert len(engine.raw_samples()) == 2

    def test_delete_unsampled_tuple_no_rebuild(self):
        db, engine = two_table_engine(SynopsisSpec.fixed_size(1))
        for i in range(6):
            engine.insert("r", (1, i))
        engine.insert("s", (1, 0))
        sampled_r = engine.raw_samples()[0][0]
        victim = next(t for t in range(6) if t != sampled_r)
        engine.delete("r", victim)
        assert engine.stats.full_recomputes == 0
        assert engine.total_results() == 5
