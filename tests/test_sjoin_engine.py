"""SJoin engine end-to-end tests against the exact executor."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Column,
    Database,
    JoinExecutor,
    SJoinEngine,
    SynopsisSpec,
    TableSchema,
    parse_query,
)

from conftest import make_tables, random_query, random_row


def two_table_engine(spec=None, seed=0):
    db = Database()
    make_tables(db, [("r", 2), ("s", 2)])
    query = parse_query("SELECT * FROM r, s WHERE r.c0 = s.c0", db)
    engine = SJoinEngine(db, query, spec or SynopsisSpec.fixed_size(8),
                         seed=seed)
    return db, engine


class TestInsertDelete:
    def test_filtered_insert_returns_minus_one(self):
        db = Database()
        make_tables(db, [("r", 2), ("s", 2)])
        query = parse_query(
            "SELECT * FROM r, s WHERE r.c0 = s.c0 AND r.c1 < 5", db
        )
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(8), seed=0)
        assert engine.insert("r", (1, 10)) == -1
        assert engine.insert("r", (1, 3)) == 0
        assert engine.stats.filtered_inserts == 1
        assert len(db.table("r")) == 1  # pre-filter kept the row out

    def test_j_tracks_exact(self):
        db, engine = two_table_engine()
        engine.insert("r", (1, 0))
        engine.insert("s", (1, 0))
        engine.insert("s", (1, 1))
        assert engine.total_results() == 2
        engine.delete("s", 1)
        assert engine.total_results() == 1
        engine.delete("r", 0)
        assert engine.total_results() == 0

    def test_synopsis_always_full_when_possible(self):
        db, engine = two_table_engine(SynopsisSpec.fixed_size(4))
        for i in range(6):
            engine.insert("r", (1, i))
        for i in range(6):
            engine.insert("s", (1, i))
        assert len(engine.raw_samples()) == 4
        # delete tuples until fewer than m results remain
        for tid in range(5):
            engine.delete("r", tid)
        assert engine.total_results() == 6
        assert len(engine.raw_samples()) == 4
        engine.delete("r", 5)
        assert engine.total_results() == 0
        assert len(engine.raw_samples()) == 0

    def test_replenish_after_purge(self):
        db, engine = two_table_engine(SynopsisSpec.fixed_size(3))
        for i in range(10):
            engine.insert("r", (i, 0))
            engine.insert("s", (i, 0))
        # every (i,i) pair is one result; delete a sampled tuple
        sample = engine.raw_samples()[0]
        r_tid = sample[0]
        engine.delete("r", r_tid)
        assert engine.total_results() == 9
        assert len(engine.raw_samples()) == 3
        assert all(s[0] != r_tid for s in engine.raw_samples())

    def test_samples_always_subset_of_exact(self):
        rng = random.Random(77)
        db, engine = two_table_engine(SynopsisSpec.fixed_size(5), seed=9)
        live = {"r": [], "s": []}
        for _ in range(150):
            if rng.random() < 0.35 and any(live.values()):
                alias = rng.choice([a for a in live if live[a]])
                tid = live[alias].pop(rng.randrange(len(live[alias])))
                engine.delete(alias, tid)
            else:
                alias = rng.choice(["r", "s"])
                tid = engine.insert(alias, random_row(rng, 2, 4))
                live[alias].append(tid)
            exact = set(JoinExecutor(db, engine.query).results())
            assert set(engine.raw_samples()) <= exact
            assert len(engine.raw_samples()) == min(5, len(exact))
            assert engine.total_results() == len(exact)


class TestSynopsisTypes:
    @pytest.mark.parametrize("spec", [
        SynopsisSpec.fixed_size(6),
        SynopsisSpec.with_replacement(6),
        SynopsisSpec.bernoulli(0.3),
    ])
    def test_random_ops_all_types(self, spec):
        rng = random.Random(5)
        db, engine = two_table_engine(spec, seed=3)
        live = {"r": [], "s": []}
        for _ in range(120):
            if rng.random() < 0.3 and any(live.values()):
                alias = rng.choice([a for a in live if live[a]])
                tid = live[alias].pop(rng.randrange(len(live[alias])))
                engine.delete(alias, tid)
            else:
                alias = rng.choice(["r", "s"])
                tid = engine.insert(alias, random_row(rng, 2, 4))
                live[alias].append(tid)
        exact = set(JoinExecutor(db, engine.query).results())
        assert set(engine.raw_samples()) <= exact
        assert engine.total_results() == len(exact)

    def test_with_replacement_keeps_m_slots(self):
        db, engine = two_table_engine(SynopsisSpec.with_replacement(5))
        for i in range(8):
            engine.insert("r", (i % 3, i))
            engine.insert("s", (i % 3, i))
        assert len(engine.raw_samples()) == 5
        engine.delete("r", 0)
        if engine.total_results() > 0:
            assert len(engine.raw_samples()) == 5


class TestPropertyRandomQueries:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=2, max_value=4))
    def test_engine_matches_exact_on_random_queries(self, seed, n_tables):
        rng = random.Random(seed)
        db, query = random_query(rng, n_tables)
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(7),
                             seed=seed)
        live = {alias: [] for alias in query.aliases}
        for _ in range(60):
            if rng.random() < 0.3 and any(live.values()):
                alias = rng.choice([a for a in live if live[a]])
                tid = live[alias].pop(rng.randrange(len(live[alias])))
                engine.delete(alias, tid)
            else:
                alias = rng.choice(list(query.aliases))
                ncols = len(
                    db.table(query.range_table(alias).table_name)
                    .schema.columns
                )
                tid = engine.insert(alias, random_row(rng, ncols, 4))
                live[alias].append(tid)
        exact = set(JoinExecutor(db, query, include_filters=False,
                                 include_residual=False).results())
        assert engine.total_results() == len(exact)
        assert set(engine.raw_samples()) <= exact
        assert len(engine.raw_samples()) == min(7, len(exact))
        engine.graph.check_invariants()


class TestStats:
    def test_counters_advance(self):
        db, engine = two_table_engine()
        engine.insert("r", (1, 1))
        engine.insert("s", (1, 2))
        engine.delete("s", 0)
        stats = engine.stats
        assert stats.inserts == 2
        assert stats.deletes == 1
        assert stats.new_results_total == 1
        assert stats.removed_results_total == 1
