"""repro.obs.trace: ring semantics, slow-op promotion, engine spans.

Clock-dependent behaviour (durations, thresholds) runs against an
injected fake clock so every assertion is deterministic; the engine and
persistence integrations then only assert structure (kinds, phases,
annotations), never wall-clock values.
"""

import logging
import random

import pytest

from repro import Database, JoinSynopsisMaintainer, MaintainerConfig, \
    SynopsisSpec
from repro.errors import InvalidArgumentError
from repro.obs import NULL_TRACER, MetricsRegistry, NullTracer, Tracer, \
    as_tracer
from repro.obs import names as metric_names
from repro.obs.trace import TraceEvent, TraceRing

from conftest import make_tables

SQL = "SELECT * FROM r, s WHERE r.c0 = s.c0"


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2)])
    return db


class FakeClock:
    """Scripted nanosecond clock: each call returns now, then advances."""

    def __init__(self, step=10):
        self.now = 0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def make_event(seq, duration=1, **kw):
    return TraceEvent(seq=seq, kind=kw.get("kind", "insert"),
                      target=kw.get("target", "r"), start_ns=0,
                      duration_ns=duration, batch=1, phases={},
                      extra=None, slow=False)


# ----------------------------------------------------------------------
# ring
# ----------------------------------------------------------------------
class TestTraceRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(InvalidArgumentError):
            TraceRing(0)

    def test_retains_most_recent_in_order(self):
        ring = TraceRing(3)
        for seq in range(5):
            ring.append(make_event(seq))
        assert ring.recorded == 5
        assert ring.dropped == 2
        assert [e.seq for e in ring.snapshot()] == [2, 3, 4]

    def test_under_capacity_drops_nothing(self):
        ring = TraceRing(8)
        for seq in range(3):
            ring.append(make_event(seq))
        assert ring.dropped == 0
        assert [e.seq for e in ring.snapshot()] == [0, 1, 2]

    def test_capacity_one_keeps_latest(self):
        ring = TraceRing(1)
        for seq in range(4):
            ring.append(make_event(seq))
        assert [e.seq for e in ring.snapshot()] == [3]
        assert ring.dropped == 3


# ----------------------------------------------------------------------
# tracer + slow-op promotion (fake clock throughout)
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_measures_duration_with_injected_clock(self):
        tracer = Tracer(capacity=4, clock=FakeClock(step=100))
        span = tracer.start("insert", target="r")
        event = tracer.finish(span)
        assert event.duration_ns == 100
        assert event.kind == "insert"
        assert event.target == "r"
        assert not event.slow

    def test_promotion_threshold_is_inclusive(self):
        promoted = []
        tracer = Tracer(capacity=8, slow_op_threshold_ns=100,
                        sink=promoted.append, clock=FakeClock(step=100))
        tracer.finish(tracer.start("insert"))
        assert tracer.slow_ops == 1
        assert len(promoted) == 1
        assert promoted[0]["slow"] is True
        assert promoted[0]["duration_ns"] == 100

    def test_below_threshold_not_promoted(self):
        promoted = []
        tracer = Tracer(capacity=8, slow_op_threshold_ns=101,
                        sink=promoted.append, clock=FakeClock(step=100))
        event = tracer.finish(tracer.start("insert"))
        assert not event.slow
        assert tracer.slow_ops == 0
        assert promoted == []

    def test_zero_threshold_promotes_everything(self):
        promoted = []
        tracer = Tracer(capacity=8, slow_op_threshold_ns=0,
                        sink=promoted.append, clock=FakeClock(step=1))
        for _ in range(3):
            tracer.finish(tracer.start("insert"))
        assert tracer.slow_ops == 3
        assert len(promoted) == 3

    def test_none_threshold_never_promotes(self):
        promoted = []
        tracer = Tracer(capacity=8, sink=promoted.append,
                        clock=FakeClock(step=10 ** 12))
        tracer.finish(tracer.start("insert"))
        assert tracer.slow_ops == 0
        assert promoted == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(InvalidArgumentError):
            Tracer(slow_op_threshold_ns=-1)

    def test_phases_accumulate_and_annotations_attach(self):
        tracer = Tracer(capacity=4, clock=FakeClock(step=5))
        span = tracer.start("insert", target="r")
        span.phase("graph_ns", 7)
        span.phase("graph_ns", 3)
        span.phase("sample_ns", 2)
        span.annotate(new_results=4)
        event = tracer.finish(span)
        assert event.phases == {"graph_ns": 10, "sample_ns": 2}
        assert event.extra == {"new_results": 4}
        payload = event.to_dict()
        assert payload["phases"]["graph_ns"] == 10
        assert payload["extra"] == {"new_results": 4}

    def test_default_sink_logs_one_structured_line(self, caplog):
        tracer = Tracer(capacity=4, slow_op_threshold_ns=0,
                        clock=FakeClock(step=1))
        with caplog.at_level(logging.WARNING, logger="repro.trace"):
            tracer.finish(tracer.start("insert", target="r"))
        assert len(caplog.records) == 1
        assert "slow op" in caplog.records[0].getMessage()
        assert '"kind": "insert"' in caplog.records[0].getMessage()

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.start("insert", target="r")
        span.phase("graph_ns", 5)
        span.annotate(x=1)
        assert NULL_TRACER.finish(span) is None
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.recorded == 0

    def test_as_tracer_normalises_none(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer(capacity=2)
        assert as_tracer(tracer) is tracer
        assert isinstance(as_tracer(None), NullTracer)


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["sjoin-opt", "sjoin", "sj"])
class TestEngineSpans:
    def drive(self, tracer, engine, n=40):
        maintainer = JoinSynopsisMaintainer(make_db(), SQL, MaintainerConfig(
            spec=SynopsisSpec.fixed_size(10), engine=engine, seed=3,
            tracer=tracer))
        rng = random.Random(11)
        tids = []
        for i in range(n):
            tids.append(maintainer.insert("r", (rng.randrange(4), i)))
            maintainer.insert("s", (rng.randrange(4), i))
        for tid in tids[: n // 4]:
            maintainer.delete("r", tid)
        return maintainer

    def test_insert_and_delete_events_recorded(self, engine):
        tracer = Tracer(capacity=4096)
        self.drive(tracer, engine)
        events = tracer.events()
        kinds = {e.kind for e in events}
        assert kinds == {"insert", "delete"}
        targets = {e.target for e in events}
        assert targets <= {"r", "s"}
        inserts = [e for e in events if e.kind == "insert"]
        # every insert span carries the phase breakdown of its engine
        phase_keys = set()
        for event in inserts:
            phase_keys |= set(event.phases)
        assert phase_keys <= {"graph_ns", "sample_ns", "enumerate_ns"}
        assert any(event.phases for event in inserts)

    def test_tracing_does_not_change_results(self, engine):
        traced = self.drive(Tracer(capacity=64), engine)
        plain = self.drive(None, engine)
        assert traced.total_results() == plain.total_results()
        assert sorted(traced.synopsis()) == sorted(plain.synopsis())

    def test_maintainer_publishes_trace_gauges(self, engine):
        obs = MetricsRegistry()
        tracer = Tracer(capacity=16)
        maintainer = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(
                spec=SynopsisSpec.fixed_size(10), engine=engine, seed=3,
                obs=obs, tracer=tracer))
        maintainer.insert("r", (1, 1))
        maintainer.insert("s", (1, 2))
        metrics = maintainer.stats().metrics
        assert metrics[metric_names.TRACE_EVENTS]["value"] == \
            tracer.recorded
        assert metrics[metric_names.TRACE_DROPPED]["value"] == 0
        assert metrics[metric_names.TRACE_SLOW_OPS]["value"] == 0


# ----------------------------------------------------------------------
# persistence integration
# ----------------------------------------------------------------------
class TestPersistSpans:
    def test_wal_and_snapshot_spans(self, tmp_path):
        from repro.persist import PersistentMaintainer

        tracer = Tracer(capacity=256)
        maintainer = JoinSynopsisMaintainer(make_db(), SQL,
                                            MaintainerConfig(seed=5))
        pm = PersistentMaintainer(maintainer, str(tmp_path), sync="batch",
                                  tracer=tracer)
        pm.insert("r", (1, 1))
        pm.insert("s", (1, 2))
        pm.checkpoint()
        pm.close()
        events = tracer.events()
        appends = [e for e in events if e.kind == "wal.append"]
        snaps = [e for e in events if e.kind == "snapshot.write"]
        assert appends and snaps
        for event in appends:
            assert event.extra is not None
            assert event.extra["bytes"] > 0
            assert event.extra["fsyncs"] >= 0
        assert snaps[-1].extra["wal_lsn"] >= 0

    def test_recovered_maintainer_keeps_tracing_persist_layer(
            self, tmp_path):
        from repro.persist import PersistentMaintainer

        maintainer = JoinSynopsisMaintainer(make_db(), SQL,
                                            MaintainerConfig(seed=5))
        pm = PersistentMaintainer(maintainer, str(tmp_path))
        pm.insert("r", (1, 1))
        pm.close()
        tracer = Tracer(capacity=64)
        recovered = PersistentMaintainer.recover(str(tmp_path),
                                                 tracer=tracer)
        recovered.insert("s", (1, 2))
        recovered.close()
        assert any(e.kind == "wal.append" for e in tracer.events())


# ----------------------------------------------------------------------
# service integration
# ----------------------------------------------------------------------
class TestServiceSpans:
    def test_ingest_batches_traced_with_phases(self):
        from repro.service import ServiceConfig, SynopsisService

        tracer = Tracer(capacity=64)
        maintainer = JoinSynopsisMaintainer(make_db(), SQL,
                                            MaintainerConfig(seed=7))
        service = SynopsisService(maintainer,
                                  ServiceConfig(tracer=tracer))
        try:
            service.insert("r", (1, 1))
            service.insert("s", (1, 2))
        finally:
            service.close()
        batches = [e for e in tracer.events()
                   if e.kind == "ingest.batch"]
        assert batches
        for event in batches:
            assert event.batch >= 1
            assert set(event.phases) == {"apply_ns", "publish_ns"}
