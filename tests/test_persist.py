"""repro.persist units: WAL framing, snapshot store, state round trips."""

import os
import pickle
import random

import pytest

from repro import MaintainerConfig
from repro import Column, Database, ForeignKey, TableSchema
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.core.synopsis import SynopsisSpec
from repro.errors import PersistError, RecoveryError
from repro.index.api import available_backends
from repro.obs.metrics import MetricsRegistry
from repro.persist import (
    PersistentMaintainer,
    PersistentManager,
    SnapshotStore,
    WriteAheadLog,
    capture_database,
    capture_maintainer,
    restore_database,
    restore_maintainer,
)
from repro.persist.state import capture_manager, restore_manager

from conftest import make_tables

SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0"


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
    return db


def drive(target, rng, n, domain=6):
    """Random inserts/deletes against anything with insert/delete."""
    live = {"r": [], "s": [], "t": []}
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        if live[alias] and rng.random() < 0.3:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            target.delete(alias, tid)
        else:
            tid = target.insert(
                alias, (rng.randrange(domain), rng.randrange(domain)))
            if tid >= 0:
                live[alias].append(tid)
    return live


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        entries = [("apply", [i]) for i in range(20)]
        lsns = wal.append_many(entries)
        assert lsns == list(range(20))
        assert wal.next_lsn == 20
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.next_lsn == 20
        assert [e for _, e in reopened.replay()] == entries
        assert [lsn for lsn, _ in reopened.replay()] == lsns
        reopened.close()

    def test_replay_from_lsn(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_many(list(range(10)))
        assert [e for _, e in wal.replay(from_lsn=7)] == [7, 8, 9]
        wal.close()

    def test_rotation_preserves_lsns(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=64)
        for i in range(30):
            wal.append(("entry", i))
        assert wal.rotations > 0
        assert len(os.listdir(tmp_path)) > 1
        assert [e for _, e in wal.replay()] == [("entry", i)
                                               for i in range(30)]
        wal.close()

    def test_truncate_through_drops_only_covered_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=64)
        for i in range(30):
            wal.append(i)
        checkpoint_lsn = 15
        wal.rotate()
        wal.truncate_through(checkpoint_lsn - 1)
        surviving = [lsn for lsn, _ in wal.replay()]
        # everything from the checkpoint on must survive; only whole
        # segments below it may be dropped
        assert all(lsn < checkpoint_lsn or lsn in surviving
                   for lsn in range(30))
        assert set(range(checkpoint_lsn, 30)) <= set(surviving)
        wal.close()

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_many(["a", "b", "c"])
        wal.close()
        seg = os.path.join(str(tmp_path), os.listdir(tmp_path)[0])
        size = os.path.getsize(seg)
        with open(seg, "ab") as fh:  # simulate a torn trailing record
            fh.write(b"\x99\x00\x00\x00\x12\x34\x56\x78partial")
        reopened = WriteAheadLog(str(tmp_path))
        assert [e for _, e in reopened.replay()] == ["a", "b", "c"]
        assert os.path.getsize(seg) == size
        # appends continue from the cut point with correct LSNs
        assert reopened.append("d") == 3
        assert [e for _, e in reopened.replay()] == ["a", "b", "c", "d"]
        reopened.close()

    def test_corrupted_crc_cuts_replay_at_last_valid_record(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_many(["a", "b", "c"])
        wal.close()
        seg = os.path.join(str(tmp_path), os.listdir(tmp_path)[0])
        data = open(seg, "rb").read()
        # flip a byte inside the last record's payload
        corrupted = data[:-2] + bytes([data[-2] ^ 0xFF]) + data[-1:]
        with open(seg, "wb") as fh:
            fh.write(corrupted)
        reopened = WriteAheadLog(str(tmp_path))
        assert [e for _, e in reopened.replay()] == ["a", "b"]
        reopened.close()

    def test_sync_policy_validation(self, tmp_path):
        with pytest.raises(PersistError):
            WriteAheadLog(str(tmp_path), sync="sometimes")

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        with pytest.raises(PersistError):
            wal.append("x")


# ----------------------------------------------------------------------
# snapshot store
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_write_load_round_trip(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        payload = {"x": [1, 2, 3], "nested": {"y": (4, 5)}}
        store.write(payload, wal_lsn=17)
        loaded, header = store.load_latest()
        assert loaded == payload
        assert header["wal_lsn"] == 17

    def test_latest_wins(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=3)
        for i in range(3):
            store.write({"gen": i}, wal_lsn=i)
        loaded, header = store.load_latest()
        assert loaded == {"gen": 2} and header["wal_lsn"] == 2

    def test_retention_prunes_old_snapshots(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=2)
        for i in range(5):
            store.write({"gen": i}, wal_lsn=i)
        snaps = [n for n in os.listdir(tmp_path) if n.endswith(".snap")]
        assert len(snaps) == 2
        assert store.load_latest()[0] == {"gen": 4}

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(str(tmp_path), retain=3)
        store.write({"gen": 0}, wal_lsn=0)
        path = store.write({"gen": 1}, wal_lsn=1)
        with open(path, "r+b") as fh:  # tear the newest snapshot
            fh.truncate(os.path.getsize(path) - 5)
        loaded, header = store.load_latest()
        assert loaded == {"gen": 0} and header["wal_lsn"] == 0

    def test_all_corrupt_returns_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        path = store.write({"gen": 0}, wal_lsn=0)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        assert store.load_latest() is None


# ----------------------------------------------------------------------
# state capture / restore
# ----------------------------------------------------------------------
class TestStateRoundTrip:
    def test_database_round_trip_preserves_tids_and_tombstones(self):
        db = make_db()
        tids = [db.table("r").insert((i, i)) for i in range(5)]
        db.table("r").delete(tids[2])
        restored = restore_database(capture_database(db))
        assert sorted(restored.table_names()) == ["r", "s", "t"]
        assert list(restored.table("r").scan()) == \
            list(db.table("r").scan())
        # a fresh insert gets the same next TID in both worlds
        assert restored.table("r").insert((9, 9)) == \
            db.table("r").insert((9, 9))

    @pytest.mark.parametrize("algorithm", ["sjoin", "sjoin-opt"])
    @pytest.mark.parametrize("spec", [
        SynopsisSpec.fixed_size(12),
        SynopsisSpec.with_replacement(12),
        SynopsisSpec.bernoulli(0.3),
    ], ids=["fixed", "replacement", "bernoulli"])
    def test_maintainer_round_trip_is_bit_identical(self, algorithm,
                                                    spec):
        db = make_db()
        maintainer = JoinSynopsisMaintainer(db, SQL, MaintainerConfig(spec=spec, engine=algorithm, seed=7))
        rng = random.Random(1)
        drive(maintainer, rng, 150)
        state = capture_maintainer(maintainer)
        state = pickle.loads(pickle.dumps(state))  # as snapshots do
        restored = restore_maintainer(
            restore_database(capture_database(db)), state)
        assert restored.total_results() == maintainer.total_results()
        assert restored.engine.raw_samples() == \
            maintainer.engine.raw_samples()
        assert restored.synopsis() == maintainer.synopsis()
        assert restored.stats() == maintainer.stats()
        # future randomness is shared: both worlds draw the same stream
        stream = random.Random(2)
        drive(maintainer, stream, 150)
        drive(restored, random.Random(2), 150)
        assert restored.engine.raw_samples() == \
            maintainer.engine.raw_samples()
        assert restored.engine.rng.getstate() == \
            maintainer.engine.rng.getstate()

    @pytest.mark.parametrize("backend", available_backends())
    def test_round_trip_preserves_index_backend(self, backend):
        """Regression: capture used to drop the backend choice, so a
        fenwick maintainer silently restored onto AVL."""
        db = make_db()
        maintainer = JoinSynopsisMaintainer(
            db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), engine="sjoin-opt", seed=7, index_backend=backend))
        drive(maintainer, random.Random(1), 150)
        state = pickle.loads(pickle.dumps(capture_maintainer(maintainer)))
        assert state["index_backend"] == backend
        restored = restore_maintainer(
            restore_database(capture_database(db)), state)
        assert restored.index_backend == backend
        assert restored.stats().index_backend == backend
        for tree in restored.engine.graph.trees.values():
            assert tree.backend_name == backend
        assert restored.synopsis() == maintainer.synopsis()
        # identical future stream on the restored backend
        drive(maintainer, random.Random(2), 100)
        drive(restored, random.Random(2), 100)
        assert restored.engine.raw_samples() == \
            maintainer.engine.raw_samples()

    def test_legacy_snapshot_without_backend_restores_onto_avl(self):
        db = make_db()
        maintainer = JoinSynopsisMaintainer(
            db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), engine="sjoin-opt", seed=7))
        drive(maintainer, random.Random(1), 80)
        state = capture_maintainer(maintainer)
        del state["index_backend"]  # snapshots predating the pin
        restored = restore_maintainer(
            restore_database(capture_database(db)), state)
        assert restored.index_backend == "avl"

    def test_snapshot_pinning_retired_backend_restores_onto_avl(self):
        """A snapshot recorded against the since-retired "skiplist"
        backend restores onto the built-in default: every backend ranks
        join results identically, so the sample stream is unchanged."""
        db = make_db()
        maintainer = JoinSynopsisMaintainer(
            db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), engine="sjoin-opt", seed=7))
        drive(maintainer, random.Random(1), 80)
        state = capture_maintainer(maintainer)
        state["index_backend"] = "skiplist"
        restored = restore_maintainer(
            restore_database(capture_database(db)), state)
        assert restored.index_backend == "avl"
        assert restored.synopsis() == maintainer.synopsis()
        drive(maintainer, random.Random(2), 80)
        drive(restored, random.Random(2), 80)
        assert restored.engine.raw_samples() == \
            maintainer.engine.raw_samples()

    def test_fk_combined_node_round_trip(self):
        db = Database()
        db.create_table(TableSchema(
            "dim", [Column("k"), Column("x")], primary_key=("k",)))
        db.create_table(TableSchema(
            "fact", [Column("k"), Column("v")],
            foreign_keys=(ForeignKey(("k",), "dim", ("k",)),)))
        for k in range(6):
            db.table("dim").insert((k, k))
        maintainer = JoinSynopsisMaintainer(
            db, "SELECT * FROM fact, dim WHERE fact.k = dim.k", MaintainerConfig(spec=SynopsisSpec.fixed_size(8), engine="sjoin-opt", seed=3))
        for tid, row in db.table("dim").scan():
            maintainer.engine.notify_insert("dim", tid, row)
        rng = random.Random(4)
        fact_tids = []
        for _ in range(80):
            if fact_tids and rng.random() < 0.3:
                maintainer.delete(
                    "fact", fact_tids.pop(rng.randrange(len(fact_tids))))
            else:
                fact_tids.append(
                    maintainer.insert("fact", (rng.randrange(6),
                                               rng.randrange(9))))
        assert len(maintainer.engine._combined) == 1
        restored = restore_maintainer(
            restore_database(capture_database(db)),
            capture_maintainer(maintainer))
        assert restored.engine.raw_samples() == \
            maintainer.engine.raw_samples()
        assert restored.synopsis() == maintainer.synopsis()
        runtime = restored.engine._combined[
            next(iter(restored.engine._combined))]
        original = maintainer.engine._combined[
            next(iter(maintainer.engine._combined))]
        assert runtime.state_dict() == original.state_dict()

    def test_sj_engine_is_not_persistable(self):
        db = make_db()
        maintainer = JoinSynopsisMaintainer(db, SQL, MaintainerConfig(engine="sj", seed=0))
        with pytest.raises(PersistError, match="sj"):
            capture_maintainer(maintainer)

    def test_tampered_verify_block_raises_recovery_error(self):
        db = make_db()
        maintainer = JoinSynopsisMaintainer(
            db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(8), seed=0))
        drive(maintainer, random.Random(0), 60)
        state = capture_maintainer(maintainer)
        state["verify"]["total_results"] += 1
        with pytest.raises(RecoveryError, match="total_results"):
            restore_maintainer(
                restore_database(capture_database(db)), state)

    def test_unknown_state_version_rejected(self):
        db = make_db()
        maintainer = JoinSynopsisMaintainer(db, SQL, MaintainerConfig(seed=0))
        state = capture_maintainer(maintainer)
        state["version"] = 999
        with pytest.raises(PersistError, match="version"):
            restore_maintainer(db, state)

    def test_manager_round_trip_with_seed_rng(self):
        from repro.core.manager import SynopsisManager

        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=5))
        manager.register("q1", SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(8)))
        rng = random.Random(6)
        for _ in range(100):
            manager.insert("r", (rng.randrange(5), rng.randrange(5)))
            manager.insert("s", (rng.randrange(5), rng.randrange(5)))
            manager.insert("t", (rng.randrange(5), rng.randrange(5)))
        state = capture_manager(manager)
        db_state = capture_database(db)
        restored = restore_manager(restore_database(db_state), state)
        assert restored.names() == manager.names()
        assert restored.synopsis("q1") == manager.synopsis("q1")
        # the seed RNG continues identically: both sides derive the same
        # seed for the next registration
        q2 = "SELECT * FROM r, s WHERE r.c1 = s.c1"
        ma = manager.register("q2a", q2)
        mb = restored.register("q2a", q2)
        assert ma.engine.rng.getstate() == mb.engine.rng.getstate()


# ----------------------------------------------------------------------
# persistent wrappers (WAL + checkpoint + recover)
# ----------------------------------------------------------------------
class TestPersistentMaintainer:
    def test_recover_replays_wal_tail(self, tmp_path):
        db = make_db()
        maintainer = JoinSynopsisMaintainer(
            db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=1))
        pm = PersistentMaintainer(maintainer, str(tmp_path))
        rng = random.Random(2)
        drive(pm, rng, 80)
        pm.checkpoint()
        drive(pm, rng, 40)  # tail beyond the checkpoint, WAL only
        expected = (pm.total_results(), pm.synopsis())
        pm.abandon()
        recovered = PersistentMaintainer.recover(str(tmp_path))
        assert recovered.replayed_ops == 40
        assert recovered.total_results() == expected[0]
        assert recovered.synopsis() == expected[1]

    def test_fresh_wrapper_over_existing_state_is_rejected(self,
                                                           tmp_path):
        db = make_db()
        pm = PersistentMaintainer(
            JoinSynopsisMaintainer(db, SQL, MaintainerConfig(seed=0)), str(tmp_path))
        pm.close()
        with pytest.raises(PersistError, match="recover"):
            PersistentMaintainer(
                JoinSynopsisMaintainer(make_db(), SQL, MaintainerConfig(seed=0)),
                str(tmp_path))

    def test_recover_empty_directory_raises(self, tmp_path):
        with pytest.raises(PersistError, match="no valid snapshot"):
            PersistentMaintainer.recover(str(tmp_path))

    def test_checkpoint_truncates_wal(self, tmp_path):
        db = make_db()
        pm = PersistentMaintainer(
            JoinSynopsisMaintainer(db, SQL, MaintainerConfig(seed=1)), str(tmp_path),
            segment_max_bytes=256)
        drive(pm, random.Random(3), 120)
        wal_dir = os.path.join(str(tmp_path), "wal")
        before = len(os.listdir(wal_dir))
        pm.checkpoint()
        after = len(os.listdir(wal_dir))
        assert after < before
        pm.close()
        recovered = PersistentMaintainer.recover(str(tmp_path))
        assert recovered.replayed_ops == 0

    def test_obs_metrics_published(self, tmp_path):
        from repro.obs import names as metric_names

        db = make_db()
        obs = MetricsRegistry()
        pm = PersistentMaintainer(
            JoinSynopsisMaintainer(db, SQL, MaintainerConfig(seed=1)), str(tmp_path),
            obs=obs)
        drive(pm, random.Random(4), 30)
        pm.checkpoint()
        pm.close()
        snapshot = obs.snapshot()
        assert snapshot[metric_names.PERSIST_WAL_APPENDS]["value"] == 30
        assert snapshot[metric_names.PERSIST_SNAPSHOT_WRITES]["value"] == 2
        assert snapshot[metric_names.PERSIST_WAL_APPEND_NS]["count"] == 30
        obs2 = MetricsRegistry()
        recovered = PersistentMaintainer.recover(str(tmp_path), obs=obs2)
        snap2 = obs2.snapshot()
        assert snap2[metric_names.PERSIST_RECOVERIES]["value"] == 1
        assert snap2[metric_names.PERSIST_RECOVERY_NS]["count"] == 1
        assert snap2[metric_names.PERSIST_RECOVERY_REPLAYED_OPS][
            "value"] == recovered.replayed_ops


class TestPersistentManager:
    def test_register_and_updates_survive_recovery(self, tmp_path):
        from repro.core.manager import SynopsisManager

        db = make_db()
        pm = PersistentManager(SynopsisManager(db, MaintainerConfig(seed=9)),
                               str(tmp_path))
        pm.register("q1", SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(8)))
        rng = random.Random(10)
        for _ in range(60):
            pm.insert("r", (rng.randrange(5), rng.randrange(5)))
            pm.insert("s", (rng.randrange(5), rng.randrange(5)))
            pm.insert("t", (rng.randrange(5), rng.randrange(5)))
        pm.checkpoint()
        # post-checkpoint: another registration plus more updates,
        # recovered purely from the WAL tail
        pm.register("q2", "SELECT * FROM r, s WHERE r.c1 = s.c1")
        for _ in range(30):
            pm.insert("r", (rng.randrange(5), rng.randrange(5)))
        expected = {name: pm.synopsis(name) for name in pm.names()}
        totals = {name: pm.total_results(name) for name in pm.names()}
        pm.abandon()
        recovered = PersistentManager.recover(str(tmp_path))
        assert sorted(recovered.names()) == ["q1", "q2"]
        for name in expected:
            assert recovered.synopsis(name) == expected[name], name
            assert recovered.total_results(name) == totals[name], name

    def test_unregister_is_replayed(self, tmp_path):
        from repro.core.manager import SynopsisManager

        db = make_db()
        pm = PersistentManager(SynopsisManager(db, MaintainerConfig(seed=9)),
                               str(tmp_path))
        pm.register("q1", SQL)
        pm.checkpoint()
        pm.unregister("q1")
        pm.abandon()
        recovered = PersistentManager.recover(str(tmp_path))
        assert recovered.names() == []

    def test_wal_register_pins_index_backend(self, tmp_path):
        """A registration replayed from the WAL (never checkpointed) must
        come back on the backend the operator chose."""
        from repro.core.manager import SynopsisManager

        db = make_db()
        pm = PersistentManager(SynopsisManager(db, MaintainerConfig(seed=9)),
                               str(tmp_path))
        pm.register("q1", SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(8), index_backend="fenwick"))
        rng = random.Random(10)
        for _ in range(40):
            pm.insert("r", (rng.randrange(5), rng.randrange(5)))
            pm.insert("s", (rng.randrange(5), rng.randrange(5)))
            pm.insert("t", (rng.randrange(5), rng.randrange(5)))
        expected = pm.synopsis("q1")
        pm.abandon()
        recovered = PersistentManager.recover(str(tmp_path))
        restored = recovered.manager.maintainer("q1")
        assert restored.index_backend == "fenwick"
        assert recovered.synopsis("q1") == expected

    def test_sj_registration_rejected(self, tmp_path):
        from repro.core.manager import SynopsisManager

        pm = PersistentManager(SynopsisManager(make_db(), MaintainerConfig(seed=0)),
                               str(tmp_path))
        with pytest.raises(PersistError, match="sj"):
            pm.register("q", SQL, MaintainerConfig(engine="sj"))
        pm.close()
