"""The retired-backend contract for ``skiplist``.

The aggregate skip list backend is retired from the registry (the AVL
backend dominates it on every benchmark and the registry carries the
maintenance cost of one balanced aggregate index, not two).  What this
file pins is the *contract* of retirement — not the dead module's
internals:

1. the registry rejects the name with an actionable migration message;
2. persisted states that pinned ``skiplist`` keep decoding: they fall
   back onto ``avl`` (the declared :func:`retired_fallback`) and replay
   to a working maintainer;
3. the module itself stays importable (the import matrix in
   ``test_api_surface.py`` covers that) so old pickles and downstream
   imports fail soft, not hard.
"""

import pytest

from repro import Column, Database, SynopsisSpec, TableSchema, parse_query
from repro.errors import IndexBackendError
from repro.index.api import (
    RETIRED_BACKENDS,
    available_backends,
    resolve_backend,
    retired_fallback,
)


def make_plan():
    from repro.query.planner import plan_query

    db = Database()
    db.create_table(TableSchema("r", [Column("a")]))
    db.create_table(TableSchema("s", [Column("a")]))
    q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
    return db, q, plan_query(q, db)


class TestRegistryRejection:
    def test_skiplist_is_declared_retired(self):
        assert "skiplist" in RETIRED_BACKENDS
        assert "skiplist" not in available_backends()
        assert retired_fallback("skiplist") == "avl"

    def test_resolve_fails_with_migration_pointer(self):
        with pytest.raises(IndexBackendError, match="retired"):
            resolve_backend("skiplist")
        # the message must tell the caller what to do instead
        with pytest.raises(IndexBackendError, match="avl"):
            resolve_backend("skiplist")

    def test_graph_construction_rejects_the_name(self):
        from repro.graph.join_graph import WeightedJoinGraph

        _, _, plan = make_plan()
        with pytest.raises(IndexBackendError, match="retired"):
            WeightedJoinGraph(plan, index_backend="skiplist")
        # unknown names still get the ordinary unknown-backend error,
        # and IndexBackendError is-a ValueError for pre-registry callers
        with pytest.raises(ValueError):
            WeightedJoinGraph(plan, index_backend="btree")
        with pytest.raises(IndexBackendError, match="fenwick"):
            WeightedJoinGraph(plan, index_backend="btree")

    def test_every_retired_name_has_a_live_fallback(self):
        for name in RETIRED_BACKENDS:
            assert retired_fallback(name) in available_backends()


class TestPersistedStateFallback:
    """States captured when ``skiplist`` was live must restore onto avl."""

    def test_captured_state_pinning_skiplist_restores_onto_avl(self):
        from repro.core.config import MaintainerConfig
        from repro.core.maintainer import JoinSynopsisMaintainer
        from repro.persist import capture_maintainer, restore_maintainer

        db = Database()
        db.create_table(TableSchema("r", [Column("a")]))
        db.create_table(TableSchema("s", [Column("a")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM r, s WHERE r.a = s.a",
            MaintainerConfig(spec=SynopsisSpec.fixed_size(4), seed=3))
        m.insert("r", (1,))
        m.insert("s", (1,))
        state = capture_maintainer(m)
        # a state written before retirement: the engine pinned skiplist
        state["index_backend"] = "skiplist"
        restored = restore_maintainer(db, state)
        assert restored.engine.index_backend == "avl"
        assert restored.synopsis() == m.synopsis()
        assert restored.total_results() == m.total_results()
        # and the restored maintainer keeps working on the fallback
        restored.insert("r", (1,))
        assert restored.total_results() == 2

    def test_unknown_backend_in_state_still_fails(self):
        """Only *declared* retirements fall back; garbage stays loud."""
        from repro.core.config import MaintainerConfig
        from repro.core.maintainer import JoinSynopsisMaintainer
        from repro.persist import capture_maintainer, restore_maintainer

        db = Database()
        db.create_table(TableSchema("r", [Column("a")]))
        db.create_table(TableSchema("s", [Column("a")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM r, s WHERE r.a = s.a",
            MaintainerConfig(seed=3))
        state = capture_maintainer(m)
        state["index_backend"] = "btree"
        with pytest.raises(IndexBackendError):
            restore_maintainer(db, state)
