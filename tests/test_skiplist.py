"""Aggregate skip list tests: same model-based checks as the AVL, plus a
cross-backend equivalence run through the full engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JoinExecutor, SJoinEngine, SynopsisSpec
from repro.index.avl import AggregateTree, IndexRange
from repro.index.skiplist import AggregateSkipList
from repro.query.intervals import Interval
from repro.query.planner import plan_query

from conftest import random_query, random_row


class Item:
    def __init__(self, values):
        self.values = list(values)


def value_of(item, slot):
    return item.values[slot]


class TestUnit:
    def test_empty(self):
        sl = AggregateSkipList(1, value_of)
        assert len(sl) == 0
        assert sl.total(0) == 0
        assert sl.select(0, 0) is None
        assert list(sl.iter_items()) == []

    def test_insert_total_order(self):
        sl = AggregateSkipList(1, value_of)
        for v in (3, 1, 4, 1, 5):
            sl.insert((v,), Item([v]))
        assert sl.total(0) == 14
        assert [i.values[0] for i in sl.iter_items()] == [1, 1, 3, 4, 5]
        sl.check_invariants()

    def test_refresh(self):
        sl = AggregateSkipList(1, value_of)
        item = Item([5])
        node = sl.insert((1,), item)
        sl.insert((2,), Item([10]))
        item.values[0] = 50
        sl.refresh(node)
        assert sl.total(0) == 60
        sl.check_invariants()

    def test_delete_by_handle(self):
        sl = AggregateSkipList(1, value_of)
        nodes = [sl.insert((v,), Item([v])) for v in range(20)]
        rng = random.Random(4)
        order = list(range(20))
        rng.shuffle(order)
        total = sum(range(20))
        for pos in order:
            sl.delete(nodes[pos])
            total -= pos
            assert sl.total(0) == total
            sl.check_invariants()

    def test_find(self):
        sl = AggregateSkipList(0, value_of)
        sl.insert((2,), "two")
        sl.insert((7,), "seven")
        assert sl.find((7,)).item == "seven"
        assert sl.find((3,)) is None

    def test_select_and_prefix(self):
        sl = AggregateSkipList(1, value_of)
        nodes = [sl.insert((v,), Item([v + 1])) for v in range(10)]
        item, prefix = sl.select(0, 0)
        assert item.values[0] == 1 and prefix == 0
        item, prefix = sl.select(0, 1)
        assert item.values[0] == 2 and prefix == 1
        for k, node in enumerate(nodes):
            assert sl.prefix_sum(0, node) == sum(range(1, k + 2))

    def test_range_queries(self):
        sl = AggregateSkipList(1, value_of)
        for a in range(3):
            for b in range(4):
                sl.insert((a, b), Item([1]))
        rng = IndexRange((1,), Interval(1, 2))
        assert sl.range_sum(0, rng) == 2
        assert [n.key for n in sl.iter_nodes(rng)] == [(1, 1), (1, 2)]

    def test_bad_backend_name(self):
        from repro import Column, Database, TableSchema, parse_query
        from repro.errors import IndexBackendError
        from repro.graph.join_graph import WeightedJoinGraph
        db = Database()
        db.create_table(TableSchema("r", [Column("a")]))
        db.create_table(TableSchema("s", [Column("a")]))
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        plan = plan_query(q, db)
        # IndexBackendError is-a ValueError, so pre-registry callers that
        # caught ValueError keep working
        with pytest.raises(ValueError):
            WeightedJoinGraph(plan, index_backend="btree")
        with pytest.raises(IndexBackendError, match="fenwick"):
            WeightedJoinGraph(plan, index_backend="btree")
        # the retired registry name fails with a migration pointer
        with pytest.raises(IndexBackendError, match="retired"):
            WeightedJoinGraph(plan, index_backend="skiplist")


# ----------------------------------------------------------------------
# model-based equivalence with the AVL backend
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "change"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1, max_size=100,
)

range_strategy = st.tuples(
    st.integers(min_value=-1, max_value=16),
    st.integers(min_value=-1, max_value=16),
    st.booleans(), st.booleans(),
)


@settings(max_examples=80, deadline=None)
@given(ops_strategy, range_strategy, st.integers(0, 150))
def test_skiplist_agrees_with_avl(ops, rng_spec, target):
    """Both backends run the same operation script; every query must
    agree (the AVL is itself validated against the brute-force model)."""
    avl = AggregateTree(1, value_of)
    sl = AggregateSkipList(1, value_of)
    handles = []  # (avl node, skip node, item)
    next_tie = 0
    for op, key, value in ops:
        if op == "insert" or not handles:
            item = Item([value])
            handles.append((
                avl.insert((key,), item, tie=next_tie),
                sl.insert((key,), item, tie=next_tie),
                item,
            ))
            next_tie += 1
        elif op == "delete":
            idx = (key * 7 + value) % len(handles)
            a, s, _ = handles.pop(idx)
            avl.delete(a)
            sl.delete(s)
        else:
            idx = (key * 5 + value) % len(handles)
            a, s, item = handles[idx]
            item.values[0] = value
            avl.refresh(a)
            sl.refresh(s)
    sl.check_invariants()
    assert len(sl) == len(avl)
    assert sl.total(0) == avl.total(0)
    lo, hi, lo_open, hi_open = rng_spec
    rng = IndexRange((), Interval(lo, hi, lo_open, hi_open))
    assert sl.range_sum(0, rng) == avl.range_sum(0, rng)
    assert [n.tie for n in sl.iter_nodes(rng)] == \
        [n.tie for n in avl.iter_nodes(rng)]
    got_sl = sl.select(0, target, rng)
    got_avl = avl.select(0, target, rng)
    if got_avl is None:
        assert got_sl is None
    else:
        assert got_sl == got_avl
    for a, s, _ in handles:
        assert sl.prefix_sum(0, s) == avl.prefix_sum(0, a)
        assert sl.prefix_sum(0, s, inclusive=False) == \
            avl.prefix_sum(0, a, inclusive=False)


# ----------------------------------------------------------------------
# engine-level equivalence
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_engine_on_skiplist_matches_exact(seed):
    # "skiplist" is retired from the registry, but the class is still a
    # conforming AggregateIndex — register it under a scratch name to
    # drive the full engine over it
    from repro.index.api import register_backend, unregister_backend
    rng = random.Random(seed)
    db, query = random_query(rng, 3)
    register_backend("skiplist-test", AggregateSkipList, replace=True)
    try:
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(6),
                             seed=seed, index_backend="skiplist-test")
        live = {alias: [] for alias in query.aliases}
        for _ in range(50):
            if rng.random() < 0.3 and any(live.values()):
                alias = rng.choice([a for a in live if live[a]])
                tid = live[alias].pop(rng.randrange(len(live[alias])))
                engine.delete(alias, tid)
            else:
                alias = rng.choice(list(query.aliases))
                ncols = len(
                    db.table(query.range_table(alias).table_name)
                    .schema.columns
                )
                tid = engine.insert(alias, random_row(rng, ncols, 4))
                live[alias].append(tid)
        exact = set(JoinExecutor(db, query, include_filters=False,
                                 include_residual=False).results())
        assert engine.total_results() == len(exact)
        assert set(engine.raw_samples()) <= exact
        assert len(engine.raw_samples()) == min(6, len(exact))
        engine.graph.check_invariants()
    finally:
        unregister_backend("skiplist-test")
