"""repro.replicate units: transport, shipper rounds, follower serving.

The differential leader/follower identity properties live in
``test_replication_identity.py`` and the follower crash matrix in
``test_replication_crash.py``; this module covers the mechanics each of
those builds on.
"""

import json
import os
import random

import pytest

from repro import Database
from repro.core.config import MaintainerConfig
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.errors import FollowerReadOnlyError, ReplicationError
from repro.obs import names as metric_names
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, format_label_key
from repro.persist import PersistentMaintainer
from repro.replicate import (
    DirectoryTransport,
    FollowerService,
    WalShipper,
    as_transport,
)
from repro.replicate.shipper import WATERMARK_CAPACITY
from repro.replicate.transport import MANIFEST_VERSION

from conftest import make_tables

SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0"


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
    return db


def make_leader(directory, seed=7, segment_max_bytes=1024, **kw):
    maintainer = JoinSynopsisMaintainer(
        make_db(), SQL, MaintainerConfig(seed=seed))
    return PersistentMaintainer(maintainer, str(directory),
                                segment_max_bytes=segment_max_bytes, **kw)


def drive(pm, rng, n, live=None, domain=6):
    live = live if live is not None else {"r": [], "s": [], "t": []}
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        if live[alias] and rng.random() < 0.3:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            pm.delete(alias, tid)
        else:
            tid = pm.insert(
                alias, (rng.randrange(domain), rng.randrange(domain)))
            if tid >= 0:
                live[alias].append(tid)
    return live


# ----------------------------------------------------------------------
# DirectoryTransport
# ----------------------------------------------------------------------
class TestDirectoryTransport:
    def test_layout_and_round_trip(self, tmp_path):
        t = DirectoryTransport(str(tmp_path / "ship"))
        assert os.path.isdir(t.wal_dir)
        assert os.path.isdir(t.snapshot_dir)
        t.put_segment_bytes("wal-0.seg", 0, b"abc")
        t.put_segment_bytes("wal-0.seg", 3, b"def")
        assert t.read_segment_bytes("wal-0.seg", 0, 10) == b"abcdef"
        assert t.read_segment_bytes("wal-0.seg", 3, 2) == b"de"
        t.put_snapshot("snap-1.snap", b"payload")
        assert t.fetch_snapshot("snap-1.snap") == b"payload"
        assert t.segment_names() == ["wal-0.seg"]
        t.remove_segment("wal-0.seg")
        assert t.segment_names() == []
        t.remove_segment("wal-0.seg")  # idempotent
        t.remove_snapshot("snap-1.snap")
        t.remove_snapshot("snap-1.snap")

    def test_manifest_round_trip_and_absence(self, tmp_path):
        t = DirectoryTransport(str(tmp_path))
        assert t.read_manifest() is None
        manifest = {"version": MANIFEST_VERSION, "ship_seq": 1,
                    "shipped_at": 1.5, "acked_lsn": 0,
                    "snapshot": None, "segments": []}
        t.publish_manifest(manifest)
        assert t.read_manifest() == manifest
        # no leftover tmp file from the atomic rename
        assert not os.path.exists(t.manifest_path + ".tmp")

    def test_unsupported_manifest_version_raises(self, tmp_path):
        t = DirectoryTransport(str(tmp_path))
        t.publish_manifest({"version": 999, "segments": []})
        with pytest.raises(ReplicationError, match="version"):
            t.read_manifest()

    def test_garbage_manifest_raises(self, tmp_path):
        t = DirectoryTransport(str(tmp_path))
        with open(t.manifest_path, "wb") as fh:
            fh.write(b"\xff\xfe not json")
        with pytest.raises(ReplicationError, match="parse"):
            t.read_manifest()

    def test_crashed_copy_tail_is_truncated_on_reship(self, tmp_path):
        """A crashed earlier copy left unadvertised bytes; the next ship
        at the acknowledged offset rewinds them."""
        t = DirectoryTransport(str(tmp_path))
        t.put_segment_bytes("wal-0.seg", 0, b"goodTORN")
        t.put_segment_bytes("wal-0.seg", 4, b"tail")
        assert t.read_segment_bytes("wal-0.seg", 0, 100) == b"goodtail"

    def test_shorter_shipped_file_than_offset_raises(self, tmp_path):
        t = DirectoryTransport(str(tmp_path))
        t.put_segment_bytes("wal-0.seg", 0, b"ab")
        with pytest.raises(ReplicationError, match="behind the shipper"):
            t.put_segment_bytes("wal-0.seg", 10, b"xy")

    def test_missing_artifacts(self, tmp_path):
        t = DirectoryTransport(str(tmp_path))
        assert t.read_segment_bytes("nope.seg", 0, 10) == b""
        with pytest.raises(ReplicationError, match="missing"):
            t.fetch_snapshot("nope.snap")

    def test_as_transport_coercion(self, tmp_path):
        t = as_transport(str(tmp_path))
        assert isinstance(t, DirectoryTransport)
        assert as_transport(t) is t
        with pytest.raises(ReplicationError, match="transport"):
            as_transport(42)


# ----------------------------------------------------------------------
# WalShipper
# ----------------------------------------------------------------------
class TestWalShipper:
    def test_first_ship_publishes_snapshot_and_segments(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(0), 30)
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"))
        manifest = shipper.ship_once()
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["ship_seq"] == 1
        assert manifest["acked_lsn"] == pm.wal.next_lsn
        assert manifest["snapshot"]["name"].startswith("snapshot-")
        chain_end = manifest["snapshot"]["wal_lsn"]
        for seg in manifest["segments"]:
            assert seg["start_lsn"] <= chain_end
            chain_end = max(chain_end, seg["start_lsn"] + seg["records"])
        assert chain_end == manifest["acked_lsn"]
        pm.close()

    def test_incremental_ship_only_moves_new_bytes(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(1), 20)
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"))
        shipper.ship_once()
        bytes_after_first = shipper.bytes_shipped
        manifest = shipper.ship_once()  # nothing new
        assert shipper.bytes_shipped == bytes_after_first
        assert manifest["ship_seq"] == 2
        drive(pm, random.Random(2), 5)
        shipper.ship_once()
        assert shipper.bytes_shipped > bytes_after_first
        pm.close()

    def test_reship_after_restart_resumes_from_manifest(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(3), 25)
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"))
        shipper.ship_once()
        drive(pm, random.Random(4), 10)
        # a new shipper (process restart) reseeds from the manifest and
        # ships only the delta
        shipper2 = WalShipper(str(tmp_path / "leader"),
                              str(tmp_path / "ship"))
        manifest = shipper2.ship_once()
        assert manifest["ship_seq"] == 2
        assert manifest["acked_lsn"] == pm.wal.next_lsn
        assert shipper2.snapshots_shipped == 0  # unchanged snapshot
        pm.close()

    def test_checkpoint_prunes_covered_shipped_segments(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(5), 40)
        transport = DirectoryTransport(str(tmp_path / "ship"))
        shipper = WalShipper(str(tmp_path / "leader"), transport)
        shipper.ship_once()
        assert len(transport.segment_names()) > 1
        pm.checkpoint()
        drive(pm, random.Random(6), 5)
        manifest = shipper.ship_once()
        names = {seg["name"] for seg in manifest["segments"]}
        assert set(transport.segment_names()) == names
        # every advertised segment starts at/after the snapshot floor
        # or overlaps it (the chain check guarantees coverage)
        floor = manifest["snapshot"]["wal_lsn"]
        assert all(seg["start_lsn"] + seg["records"] > floor
                   for seg in manifest["segments"])
        pm.close()

    def test_shipped_at_uses_injected_clock(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(7), 5)
        now = [1000.0]
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"), clock=lambda: now[0])
        assert shipper.ship_once()["shipped_at"] == 1000.0
        now[0] = 1500.0
        assert shipper.ship_once()["shipped_at"] == 1500.0
        pm.close()

    def test_metrics_published(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(8), 10)
        obs = MetricsRegistry()
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"), obs=obs)
        shipper.ship_once()
        snap = obs.snapshot()
        assert snap["replicate.ships"]["value"] == 1
        assert snap["replicate.ship_bytes"]["value"] > 0
        assert snap["replicate.acked_lsn"]["value"] == pm.wal.next_lsn
        assert snap["replicate.ship_ns"]["count"] == 1
        metrics = shipper.ship_metrics()
        assert metrics["ships"] == 1
        assert metrics["acked_lsn"] == pm.wal.next_lsn
        pm.close()

    def test_background_pump(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(9), 5)
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"))
        shipper.start(interval=0.01)
        with pytest.raises(ReplicationError, match="already running"):
            shipper.start(interval=0.01)
        deadline = 100
        import time
        while shipper.ships == 0 and deadline:
            time.sleep(0.01)
            deadline -= 1
        shipper.stop()
        shipper.stop()  # idempotent
        assert shipper.ships >= 1
        pm.close()


# ----------------------------------------------------------------------
# FollowerService mechanics
# ----------------------------------------------------------------------
def ship_pair(tmp_path, nops=30, seed=0, **leader_kw):
    pm = make_leader(tmp_path / "leader", **leader_kw)
    live = drive(pm, random.Random(seed), nops)
    shipper = WalShipper(str(tmp_path / "leader"), str(tmp_path / "ship"))
    shipper.ship_once()
    return pm, live, shipper, str(tmp_path / "ship")


class TestFollowerService:
    def test_unshipped_directory_stays_bootstrapping(self, tmp_path):
        f = FollowerService(str(tmp_path / "empty"))
        assert not f.bootstrapped
        assert f.healthz()["status"] == "bootstrapping"
        with pytest.raises(ReplicationError, match="not bootstrapped"):
            f.view()
        assert f.catch_up() == 0

    def test_bootstrap_matches_leader(self, tmp_path):
        pm, _, _, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir)
        assert f.bootstrapped
        assert f.applied_lsn == pm.wal.next_lsn
        assert f.epoch == f.applied_lsn
        assert f.synopsis() == [tuple(r) for r in pm.synopsis()]
        assert f.total_results() == pm.total_results()
        pm.close()

    def test_catch_up_is_incremental_and_idempotent(self, tmp_path):
        pm, live, shipper, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir)
        assert f.catch_up() == 0
        drive(pm, random.Random(10), 7, live)
        shipper.ship_once()
        assert f.catch_up() == 7
        assert f.catch_up() == 0
        assert f.synopsis() == [tuple(r) for r in pm.synopsis()]
        pm.close()

    def test_writes_rejected_with_leader_url(self, tmp_path):
        pm, _, _, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir, leader_url="http://leader:1234")
        for call in (
            lambda: f.insert("r", (1, 2)),
            lambda: f.delete("r", 0),
            lambda: f.apply_batch([]),
            lambda: f.submit([]),
            lambda: f.register("q", SQL),
            lambda: f.checkpoint(),
        ):
            with pytest.raises(FollowerReadOnlyError) as err:
                call()
            assert err.value.leader_url == "http://leader:1234"
            assert "read-only" in str(err.value)
        pm.close()

    def test_healthz_fields(self, tmp_path):
        pm, live, shipper, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir, leader_url="http://leader:1")
        body = f.healthz()
        assert body["status"] == "ok"
        assert body["role"] == "follower"
        assert body["leader_url"] == "http://leader:1"
        assert body["applied_lsn"] == body["acked_lsn"] == pm.wal.next_lsn
        assert body["epoch_lag"] == 0
        assert body["staleness_seconds"] >= 0.0
        assert body["snapshot"].startswith("snapshot-")
        assert body["version"]
        pm.close()

    def test_epoch_lag_counts_unapplied_acked_records(self, tmp_path):
        pm, live, shipper, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir)
        drive(pm, random.Random(11), 4, live)
        shipper.ship_once()
        # follower hasn't polled yet: lag appears once it reads the
        # manifest; a plain healthz read does not advance replication
        f._manifest = f.transport.read_manifest()
        assert f.healthz()["epoch_lag"] == 4
        f.catch_up()
        assert f.healthz()["epoch_lag"] == 0
        pm.close()

    def test_staleness_tracks_injected_clocks(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(12), 5)
        now = [50.0]
        clock = lambda: now[0]  # noqa: E731
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"), clock=clock)
        shipper.ship_once()
        f = FollowerService(str(tmp_path / "ship"), clock=clock)
        assert f.healthz()["staleness_seconds"] == 0.0
        now[0] = 80.0
        assert f.healthz()["staleness_seconds"] == 30.0
        shipper.ship_once()
        f.catch_up()
        assert f.healthz()["staleness_seconds"] == 0.0
        pm.close()

    def test_metrics_published(self, tmp_path):
        pm, live, shipper, ship_dir = ship_pair(tmp_path)
        obs = MetricsRegistry()
        f = FollowerService(ship_dir, obs=obs)
        drive(pm, random.Random(13), 3, live)
        shipper.ship_once()
        f.catch_up()
        snap = obs.snapshot()
        # 30 records tailed at construction (ship_pair) + 3 new ones
        assert snap["replicate.replayed_records"]["value"] == 33
        assert snap["replicate.applied_lsn"]["value"] == pm.wal.next_lsn
        assert snap["replicate.epoch_lag"]["value"] == 0
        assert snap["replicate.replay_ns"]["count"] == 33
        assert "replicate.applied_lsn" in f.metrics_snapshot()
        assert "repro_replicate_applied_lsn" in f.exposition()
        pm.close()

    def test_synopsis_payload_single_view(self, tmp_path):
        pm, _, _, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir)
        payload = f.synopsis_payload(limit=2)
        assert payload["epoch"] == f.applied_lsn
        assert payload["total_results"] == pm.total_results()
        assert len(payload["synopsis"]) <= 2
        assert f.service_metrics()["applied_lsn"] == f.applied_lsn
        pm.close()

    def test_background_poll_loop(self, tmp_path):
        pm, live, shipper, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir)
        f.start(poll_interval=0.01)
        with pytest.raises(ReplicationError, match="already running"):
            f.start()
        drive(pm, random.Random(14), 6, live)
        shipper.ship_once()
        import time
        deadline = 200
        while f.applied_lsn < pm.wal.next_lsn and deadline:
            time.sleep(0.01)
            deadline -= 1
        f.stop()
        f.close()  # idempotent alias
        assert f.applied_lsn == pm.wal.next_lsn
        pm.close()

    def test_torn_advertised_bytes_raise(self, tmp_path):
        """Corruption *inside* the advertised range is loud, not silent."""
        pm, _, _, ship_dir = ship_pair(tmp_path)
        transport = DirectoryTransport(ship_dir)
        manifest = transport.read_manifest()
        seg = manifest["segments"][-1]
        path = os.path.join(transport.wal_dir, seg["name"])
        with open(path, "r+b") as fh:
            fh.seek(seg["size"] - 1)
            byte = fh.read(1)
            fh.seek(seg["size"] - 1)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(ReplicationError, match="CRC"):
            FollowerService(ship_dir)
        pm.close()

    def test_unadvertised_tail_bytes_are_ignored(self, tmp_path):
        """Bytes beyond the manifest (a crashed shipper copy) are unacked
        and must not be replayed."""
        pm, _, _, ship_dir = ship_pair(tmp_path)
        transport = DirectoryTransport(ship_dir)
        manifest = transport.read_manifest()
        seg = manifest["segments"][-1]
        with open(os.path.join(transport.wal_dir, seg["name"]),
                  "ab") as fh:
            fh.write(b"\x99" * 40)  # torn garbage past the acked range
        f = FollowerService(ship_dir)
        assert f.applied_lsn == manifest["acked_lsn"]
        assert f.catch_up() == 0
        pm.close()


# ----------------------------------------------------------------------
# Correlated replication-lag tracing
# ----------------------------------------------------------------------
def lag_pair(tmp_path, nops=8, seed=21):
    """A leader + shipper on one injected wall-clock, shipped once."""
    now = [1000.0]
    clock = lambda: now[0]  # noqa: E731
    pm = make_leader(tmp_path / "leader")
    drive(pm, random.Random(seed), nops)
    shipper = WalShipper(str(tmp_path / "leader"),
                         str(tmp_path / "ship"), clock=clock)
    shipper.ship_once()
    return pm, shipper, str(tmp_path / "ship"), now, clock


class TestLagTracing:
    def test_manifest_carries_publish_watermarks(self, tmp_path):
        pm, shipper, ship_dir, now, _ = lag_pair(tmp_path)
        manifest = DirectoryTransport(ship_dir).read_manifest()
        (mark,) = manifest["watermarks"]
        assert set(mark) == {"lsn", "shipped_at", "appended_at"}
        assert mark["lsn"] == manifest["acked_lsn"]
        assert mark["shipped_at"] == 1000.0
        # real segment mtimes dwarf the injected clock, so appended_at
        # is clamped to shipped_at — injected-clock tests stay coherent
        assert mark["appended_at"] == 1000.0
        # a round with no acked progress republishes, adds no watermark
        now[0] = 1005.0
        manifest = shipper.ship_once()
        assert [m["lsn"] for m in manifest["watermarks"]] == \
            [mark["lsn"]]
        pm.close()

    def test_watermark_history_is_bounded(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"))
        for i in range(WATERMARK_CAPACITY + 5):
            pm.insert("r", (i % 6, i % 6))
            manifest = shipper.ship_once()
        marks = manifest["watermarks"]
        assert len(marks) == WATERMARK_CAPACITY
        lsns = [m["lsn"] for m in marks]
        assert lsns == sorted(lsns)
        assert lsns[-1] == manifest["acked_lsn"]
        pm.close()

    def test_restarted_shipper_reseeds_watermarks(self, tmp_path):
        pm, shipper, ship_dir, now, clock = lag_pair(tmp_path)
        before = DirectoryTransport(ship_dir).read_manifest()["watermarks"]
        now[0] = 1500.0
        again = WalShipper(str(tmp_path / "leader"), ship_dir,
                           clock=clock)
        manifest = again.ship_once()
        # nothing new acked: history survives the restart untouched
        assert manifest["watermarks"] == before
        pm.close()

    def test_leader_observes_publish_delay(self, tmp_path):
        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(22), 5)
        obs = MetricsRegistry()
        shipper = WalShipper(str(tmp_path / "leader"),
                             str(tmp_path / "ship"),
                             clock=lambda: 1000.0, obs=obs)
        shipper.ship_once()
        key = format_label_key(metric_names.REPLICATE_LAG_MS,
                               {"role": "leader"})
        snap = obs.snapshot()
        assert snap[key]["count"] == 1
        assert snap[key]["sum"] == 0  # appended_at clamps to shipped_at
        pm.close()

    def test_follower_correlates_applied_records_to_lag(self, tmp_path):
        pm, shipper, ship_dir, now, clock = lag_pair(tmp_path)
        records = pm.wal.next_lsn
        now[0] = 1002.5  # follower applies 2.5 s after publication
        obs = MetricsRegistry()
        f = FollowerService(ship_dir, clock=clock, obs=obs)
        assert f.replayed_records == records
        assert f.lag_samples == records
        assert f.last_lag_ms == 2500.0
        key = format_label_key(metric_names.REPLICATE_LAG_MS,
                               {"role": "follower"})
        snap = obs.snapshot()
        assert snap[key]["count"] == records
        assert snap[key]["max"] == 2500.0
        body = f.healthz()
        assert body["lag_ms"] == 2500.0
        assert body["lag_samples"] == records
        assert body["stalled"] is False and body["stalls"] == 0
        metrics = f.service_metrics()
        assert metrics["lag_samples"] == records
        assert metrics["last_lag_ms"] == 2500.0
        assert metrics["stalls"] == 0
        pm.close()

    def test_pre_watermark_manifest_yields_no_samples(self, tmp_path):
        """Manifests from older shippers still replicate — just lagless."""
        pm, _, _, ship_dir = ship_pair(tmp_path)
        transport = DirectoryTransport(ship_dir)
        manifest = transport.read_manifest()
        del manifest["watermarks"]
        transport.publish_manifest(manifest)
        f = FollowerService(ship_dir)
        assert f.replayed_records > 0
        assert f.lag_samples == 0
        assert f.last_lag_ms is None
        assert f.healthz()["lag_ms"] is None
        pm.close()

    def test_stall_and_resume_transitions(self, tmp_path):
        pm, shipper, ship_dir, now, clock = lag_pair(tmp_path)
        events = EventLog(sink=lambda payload: None)
        f = FollowerService(ship_dir, clock=clock, events=events,
                            stall_after=5.0)
        assert f.healthz()["stalled"] is False
        now[0] = 1010.0  # manifest is now 10 s old: past the bound
        f.catch_up()
        assert f.healthz()["stalled"] is True
        assert f.stalls == 1
        f.catch_up()  # still stalled: the event fires on the edge only
        assert f.stalls == 1
        (stall,) = events.events("replicate.stall")
        assert stall.fields["staleness_seconds"] == 10.0
        shipper.ship_once()  # fresh shipped_at at t=1010
        f.catch_up()
        assert f.healthz()["stalled"] is False
        (resumed,) = events.events("replicate.resumed")
        assert resumed.fields["staleness_seconds"] == 0.0
        assert [e.kind for e in events.events("replicate")] == \
            ["replicate.bootstrap", "replicate.stall",
             "replicate.resumed"]
        pm.close()

    def test_bootstrap_event_and_payload(self, tmp_path):
        pm, _, _, ship_dir = ship_pair(tmp_path)
        events = EventLog(sink=lambda payload: None)
        obs = MetricsRegistry()
        f = FollowerService(ship_dir, events=events, obs=obs)
        (boot,) = events.events("replicate.bootstrap")
        # the event stamps the restored snapshot's LSN; tailing then
        # advances applied_lsn past it
        assert boot.fields["wal_lsn"] <= f.applied_lsn
        assert boot.fields["snapshot"].startswith("snapshot-")
        assert boot.fields["bootstraps"] == 1
        payload = f.events_payload("replicate.bootstrap")
        assert [e["kind"] for e in payload["events"]] == \
            ["replicate.bootstrap"]
        # catch_up publishes the event-log gauges into the registry
        snap = obs.snapshot()
        assert snap[metric_names.EVENTS_EMITTED]["value"] >= 1
        pm.close()

    def test_quality_monitor_attaches_to_replica(self, tmp_path):
        pm, _, _, ship_dir = ship_pair(tmp_path)
        obs = MetricsRegistry()
        f = FollowerService(ship_dir, obs=obs, quality=True)
        assert f.quality is not None
        assert "quality" in f.healthz()
        assert metric_names.QUALITY_PROBE_ROUNDS in obs.snapshot()
        pm.close()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestReplicationCli:
    def test_ship_parser(self):
        from repro.cli import make_parser

        args = make_parser().parse_args(
            ["ship", "--from", "/a", "--to", "/b", "--once"])
        assert args.command == "ship"
        assert args.source_dir == "/a"
        assert args.to == "/b"
        assert args.once

    def test_serve_follow_parser(self):
        from repro.cli import make_parser

        args = make_parser().parse_args(
            ["serve", "--follow", "/ship", "--leader-url",
             "http://leader:80", "--poll-interval", "0.2"])
        assert args.follow == "/ship"
        assert args.leader_url == "http://leader:80"
        assert args.poll_interval == 0.2

    def test_cmd_ship_once(self, tmp_path, capsys):
        from repro.cli import main

        pm = make_leader(tmp_path / "leader")
        drive(pm, random.Random(15), 10)
        expected_lsn = pm.wal.next_lsn
        pm.close()
        assert main(["ship", "--from", str(tmp_path / "leader"),
                     "--to", str(tmp_path / "ship"), "--once"]) == 0
        out = capsys.readouterr().out
        assert "acked_lsn" in out
        f = FollowerService(str(tmp_path / "ship"))
        assert f.applied_lsn == expected_lsn

    def test_follower_over_http(self, tmp_path):
        import urllib.error
        import urllib.request

        from repro.service import ServiceHTTPServer

        pm, _, _, ship_dir = ship_pair(tmp_path)
        f = FollowerService(ship_dir, leader_url="http://leader:9")
        with ServiceHTTPServer(f, port=0) as server:
            host, port = server.address
            base = f"http://{host}:{port}"
            with urllib.request.urlopen(base + "/healthz") as resp:
                body = json.loads(resp.read())
            assert body["role"] == "follower"
            with urllib.request.urlopen(base + "/synopsis") as resp:
                payload = json.loads(resp.read())
            assert payload["total_results"] == pm.total_results()
            with urllib.request.urlopen(base + "/metrics") as resp:
                assert b"repro_" in resp.read()
            # writes answer 403 and point at the leader
            req = urllib.request.Request(
                base + "/insert",
                data=json.dumps({"table": "r", "row": [1, 2]}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req)
            assert err.value.code == 403
            assert err.value.headers["Location"] == "http://leader:9"
            assert json.loads(err.value.read())["leader_url"] == \
                "http://leader:9"
        f.stop()
        pm.close()
