"""repro.obs.quality: the online sample-quality monitor.

The decisive pair of tests: honest engines (all three synopsis types)
must stay quiet over many probe rounds, while an engine driven by an
artificially biased RNG — ``random()`` returning ``u³``, which
collapses the Vitter skip counter and over-accepts recently-inserted
results — must be flagged.  Statistics units (KS, chi-square) are
tested against hand-checkable inputs first so a regression localises.
"""

import random

import pytest

from repro import Database, JoinSynopsisMaintainer, MaintainerConfig, \
    SynopsisSpec
from repro.core import SJoinEngine
from repro.errors import InvalidArgumentError
from repro.obs import MetricsRegistry, QualityConfig, QualityMonitor
from repro.obs import names as metric_names
from repro.obs.quality import chi_square_two_sample, ks_critical, \
    ks_statistic
from repro.query.parser import parse_query

from conftest import make_tables

SQL = "SELECT * FROM r, s WHERE r.c0 = s.c0"


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2)])
    return db


class BiasedRandom(random.Random):
    """``random()`` returns ``u⁵`` — heavily skewed toward 0.

    The Vitter skip sampler draws its skips from ``1 - random()``; the
    power collapses skip lengths toward zero, so the synopsis
    over-accepts late (high-TID) results: exactly the kind of silent
    sampler corruption the monitor exists to catch.
    """

    def random(self):
        return super().random() ** 5


def drive(target, n, rng_seed=13, domain=8):
    rng = random.Random(rng_seed)
    for i in range(n):
        target.insert("r", (rng.randrange(domain), i))
        target.insert("s", (rng.randrange(domain), i))


# ----------------------------------------------------------------------
# statistics units
# ----------------------------------------------------------------------
class TestStatistics:
    def test_ks_identical_samples_is_zero(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert ks_statistic(xs, list(xs)) == 0.0

    def test_ks_disjoint_samples_is_one(self):
        assert ks_statistic([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_ks_half_shifted(self):
        # ECDFs of {1,2} vs {2,3} differ by exactly 1/2 at x in [1,2)
        assert ks_statistic([1.0, 2.0], [2.0, 3.0]) == 0.5

    def test_ks_critical_shrinks_with_sample_size(self):
        assert ks_critical(1000, 1000, 0.01) < ks_critical(10, 10, 0.01)

    def test_chi_square_identical_counts_is_zero(self):
        stat, dof = chi_square_two_sample([5, 5, 5], [5, 5, 5])
        assert stat == 0.0
        assert dof == 2

    def test_chi_square_ignores_jointly_empty_cells(self):
        stat, dof = chi_square_two_sample([5, 0, 5], [5, 0, 5])
        assert dof == 1

    def test_chi_square_scales_with_divergence(self):
        mild, _ = chi_square_two_sample([10, 10], [12, 8])
        wild, _ = chi_square_two_sample([10, 10], [20, 0])
        assert wild > mild > 0.0

    def test_chi_square_empty_sample_is_zero(self):
        assert chi_square_two_sample([0, 0], [3, 4]) == (0.0, 0)


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
class TestQualityConfig:
    def test_defaults(self):
        config = QualityConfig()
        assert config.check_every == 2048
        assert config.window == 8

    def test_immutable(self):
        config = QualityConfig()
        with pytest.raises(AttributeError):
            config.probes = 1

    @pytest.mark.parametrize("kwargs", [
        {"check_every": 0}, {"probes": 1}, {"buckets": 1},
        {"window": 0}, {"alpha": 0.0}, {"alpha": 1.0}, {"sigma": 0.0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(InvalidArgumentError):
            QualityConfig(**kwargs)


# ----------------------------------------------------------------------
# monitor mechanics
# ----------------------------------------------------------------------
class TestMonitorMechanics:
    def config(self, **overrides):
        base = dict(check_every=100, probes=64, min_results=50,
                    min_samples=10, seed=1)
        base.update(overrides)
        return QualityConfig(**base)

    def test_rounds_skip_below_size_floors(self):
        maintainer = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(seed=1))
        monitor = QualityMonitor(maintainer.engine,
                                 self.config(min_results=10 ** 9))
        drive(maintainer, 100)
        assert monitor.check_now() is None
        assert monitor.skipped_rounds == 1
        assert monitor.probe_rounds == 0

    def test_note_ops_schedules_rounds(self):
        maintainer = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(seed=1))
        drive(maintainer, 300)
        monitor = QualityMonitor(maintainer.engine, self.config())
        monitor.note_ops(250)     # 2 rounds due (check_every=100)
        assert monitor.probe_rounds + monitor.skipped_rounds == 2

    def test_maintainer_wiring_runs_rounds_and_publishes(self):
        obs = MetricsRegistry()
        maintainer = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(
                spec=SynopsisSpec.fixed_size(40), seed=1, obs=obs,
                quality=self.config()))
        assert maintainer.quality is not None
        drive(maintainer, 300)
        assert maintainer.quality.probe_rounds > 0
        metrics = maintainer.stats().metrics
        assert metrics[metric_names.QUALITY_PROBE_ROUNDS]["value"] == \
            maintainer.quality.probe_rounds
        assert metrics[metric_names.QUALITY_FLAGGED]["value"] == 0

    def test_quality_true_uses_default_config(self):
        maintainer = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(seed=1, quality=True))
        assert maintainer.quality is not None
        assert maintainer.quality.config.check_every == 2048

    def test_status_shape(self):
        maintainer = JoinSynopsisMaintainer(
            make_db(), SQL, MaintainerConfig(seed=1, quality=True))
        status = maintainer.quality.status()
        assert set(status) == {
            "flagged", "flag_count", "probe_rounds", "probes_drawn",
            "skipped_rounds", "chi_square", "chi_dof", "ks_ratio",
            "window_rounds",
        }


# ----------------------------------------------------------------------
# honest engines stay quiet, a biased sampler is flagged
# ----------------------------------------------------------------------
MONITOR_CONFIG = dict(check_every=100, probes=256, window=6,
                      min_results=400, min_samples=100, alpha=1e-3,
                      seed=5)


@pytest.mark.parametrize("spec", [
    SynopsisSpec.fixed_size(200),
    SynopsisSpec.with_replacement(200),
    SynopsisSpec.bernoulli(0.05),
], ids=["fixed", "replacement", "bernoulli"])
def test_honest_engine_not_flagged(spec):
    maintainer = JoinSynopsisMaintainer(
        make_db(), SQL, MaintainerConfig(
            spec=spec, seed=2,
            quality=QualityConfig(**MONITOR_CONFIG)))
    drive(maintainer, 800)
    monitor = maintainer.quality
    assert monitor.probe_rounds >= 5
    assert not monitor.flagged, monitor.status()


def test_biased_sampler_is_flagged():
    db = make_db()
    query = parse_query(SQL, db)
    engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(200),
                         rng=BiasedRandom(2))
    monitor = QualityMonitor(engine, QualityConfig(**MONITOR_CONFIG))
    rng = random.Random(13)
    for i in range(800):
        engine.insert("r", (rng.randrange(8), i))
        engine.insert("s", (rng.randrange(8), i))
        monitor.note_ops(2)
    assert monitor.probe_rounds >= 5
    assert monitor.flagged, monitor.status()


def test_honest_engine_same_drive_not_flagged():
    """The exact drive of the biased test, honest RNG: must stay quiet
    (guards against the biased test passing for the wrong reason)."""
    db = make_db()
    query = parse_query(SQL, db)
    engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(200),
                         rng=random.Random(2))
    monitor = QualityMonitor(engine, QualityConfig(**MONITOR_CONFIG))
    rng = random.Random(13)
    for i in range(800):
        engine.insert("r", (rng.randrange(8), i))
        engine.insert("s", (rng.randrange(8), i))
        monitor.note_ops(2)
    assert monitor.probe_rounds >= 5
    assert not monitor.flagged, monitor.status()


# ----------------------------------------------------------------------
# service surfacing
# ----------------------------------------------------------------------
def test_healthz_carries_quality_and_staleness():
    from repro.service import ServiceConfig, SynopsisService

    obs = MetricsRegistry()
    maintainer = JoinSynopsisMaintainer(
        make_db(), SQL, MaintainerConfig(seed=3, obs=obs, quality=True))
    service = SynopsisService(maintainer, ServiceConfig(obs=obs))
    try:
        service.insert("r", (1, 1))
        health = service.healthz()
        assert health["staleness_seconds"] >= 0.0
        assert health["quality"] == maintainer.quality.status()
        snapshot = obs.snapshot()
        assert metric_names.QUALITY_STALENESS_SECONDS in snapshot
        assert metric_names.QUALITY_EPOCH_LAG in snapshot
    finally:
        service.close()


def test_format_top_renders_quality_section():
    from repro.cli import format_top

    health = {
        "status": "ok", "epoch": 4, "version": "1.1.0",
        "index_backend": "avl", "uptime_seconds": 12.5,
        "queue_depth": 0, "staleness_seconds": 0.25,
        "quality": {"flagged": True, "chi_square": 99.5, "chi_dof": 30,
                    "ks_ratio": 1.4, "probe_rounds": 7,
                    "skipped_rounds": 1},
    }
    stats = {"service": {"applied_ops": 9, "applied_batches": 3,
                         "ingest_errors": 0},
             "stats": {"total_results": 42, "synopsis_size": 10}}
    text = format_top(health, stats)
    assert "FLAGGED" in text
    assert "chi2 99.5/30" in text
    assert "applied ops 9" in text
    assert "J 42" in text


def test_format_top_without_quality_section():
    from repro.cli import format_top

    text = format_top({"status": "ok", "epoch": 0})
    assert "quality" not in text
    assert "status ok" in text
