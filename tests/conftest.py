"""Shared test helpers: tiny-database builders and random-query machinery.

``random_setup`` builds a random database + random acyclic multi-way join
query (mixed equality / inequality / band predicates over small value
domains) — the workhorse of the property tests that cross-check the
weighted join graph, the join-number mapping and the engines against the
exact executor.
"""

from __future__ import annotations

import os
import random
from typing import List, Tuple

import pytest

from repro.index.api import BACKEND_ENV_VAR, default_backend


def pytest_report_header(config):
    """Announce which aggregate-index backend this run exercises.

    CI sets ``REPRO_INDEX_BACKEND`` to matrix the whole tier-1 suite over
    every registered backend; an unset variable means the built-in
    default.  ``default_backend()`` also validates the value, so a typo'd
    matrix entry fails the run immediately instead of silently testing
    the default.
    """
    configured = os.environ.get(BACKEND_ENV_VAR)
    backend = default_backend()
    source = f"{BACKEND_ENV_VAR}={configured}" if configured else "default"
    return f"repro index backend: {backend} ({source})"

from repro import (
    BandPredicate,
    Column,
    ComparisonOp,
    Database,
    JoinPredicate,
    JoinQuery,
    RangeTable,
    TableSchema,
)


def make_tables(db: Database, spec: List[Tuple[str, int]]) -> None:
    """Create tables named per ``spec`` with ``ncols`` integer columns
    named ``c0..c{n-1}``."""
    for name, ncols in spec:
        db.create_table(
            TableSchema(name, [Column(f"c{i}") for i in range(ncols)])
        )


def _random_range_predicate(rng: random.Random, left: str, left_attr: str,
                            right: str, right_attr: str):
    if rng.random() < 0.5:
        return BandPredicate(
            left=left, left_attr=left_attr,
            right=right, right_attr=right_attr,
            width=rng.randrange(3), inclusive=rng.random() < 0.5,
        )
    op = rng.choice([ComparisonOp.LT, ComparisonOp.LE,
                     ComparisonOp.GT, ComparisonOp.GE])
    return JoinPredicate(
        left=left, left_attr=left_attr, op=op,
        right=right, right_attr=right_attr,
        coeff=rng.choice([1, 1, 2, -1]),
        offset=rng.randrange(-2, 3),
    )


def random_query(rng: random.Random, num_tables: int,
                 max_cols: int = 3) -> Tuple[Database, JoinQuery]:
    """A random acyclic join query over ``num_tables`` fresh tables.

    Edges may carry one predicate (equality / inequality / band) or a
    composite of an equality plus a range predicate — exercising the
    composite-sort-key machinery everywhere this helper is used.
    """
    db = Database()
    ncols = [1 + rng.randrange(max_cols) for _ in range(num_tables)]
    names = [f"t{i}" for i in range(num_tables)]
    make_tables(db, list(zip(names, ncols)))
    predicates = []
    for i in range(1, num_tables):
        j = rng.randrange(i)  # random tree parent
        a_attr = f"c{rng.randrange(ncols[i])}"
        b_attr = f"c{rng.randrange(ncols[j])}"
        kind = rng.random()
        if kind < 0.45:
            predicates.append(JoinPredicate(
                left=names[i], left_attr=a_attr, op=ComparisonOp.EQ,
                right=names[j], right_attr=b_attr,
            ))
        elif kind < 0.85:
            predicates.append(_random_range_predicate(
                rng, names[i], a_attr, names[j], b_attr))
        else:
            # composite edge: plain equality + one range predicate on
            # (possibly) different attributes of the same pair
            predicates.append(JoinPredicate(
                left=names[i], left_attr=a_attr, op=ComparisonOp.EQ,
                right=names[j], right_attr=b_attr,
            ))
            predicates.append(_random_range_predicate(
                rng,
                names[i], f"c{rng.randrange(ncols[i])}",
                names[j], f"c{rng.randrange(ncols[j])}",
            ))
    query = JoinQuery([RangeTable(n, n) for n in names], predicates)
    return db, query


def random_row(rng: random.Random, ncols: int, domain: int = 5) -> tuple:
    return tuple(rng.randrange(domain) for _ in range(ncols))


def chi_square_uniform(counts: List[int]) -> float:
    """Chi-square statistic against the uniform distribution."""
    total = sum(counts)
    expected = total / len(counts)
    return sum((c - expected) ** 2 / expected for c in counts)


def chi_square_threshold(dof: int) -> float:
    """~99.9th percentile of chi-square via the Wilson-Hilferty cube
    approximation — loose enough to keep statistical tests stable."""
    z = 3.09  # 99.9th percentile of N(0,1)
    h = 2.0 / (9.0 * dof)
    return dof * (1.0 - h + z * (h ** 0.5)) ** 3


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)
