"""Interval algebra tests, including a hypothesis consistency property."""

from fractions import Fraction

from hypothesis import given
from hypothesis import strategies as st

from repro.query.intervals import Interval


class TestBasics:
    def test_point(self):
        p = Interval.point(3)
        assert p.is_point
        assert p.contains(3)
        assert not p.contains(2)
        assert not p.is_empty

    def test_everything(self):
        e = Interval.everything()
        assert e.contains(-(10**9)) and e.contains(10**9)
        assert not e.is_empty
        assert not e.is_point

    def test_at_most_at_least(self):
        assert Interval.at_most(5).contains(5)
        assert not Interval.at_most(5, strict=True).contains(5)
        assert Interval.at_least(5).contains(5)
        assert not Interval.at_least(5, strict=True).contains(5)

    def test_open_bounds(self):
        iv = Interval(1, 4, lo_open=True, hi_open=True)
        assert not iv.contains(1)
        assert iv.contains(2)
        assert not iv.contains(4)

    def test_empty_cases(self):
        assert Interval(5, 3).is_empty
        assert Interval(5, 5, lo_open=True).is_empty
        assert Interval(5, 5, hi_open=True).is_empty
        assert not Interval(5, 5).is_empty

    def test_fraction_bounds_compare_with_ints(self):
        iv = Interval(Fraction(1, 2), Fraction(7, 2))
        assert iv.contains(1)
        assert iv.contains(3)
        assert not iv.contains(0)
        assert not iv.contains(4)

    def test_repr_readable(self):
        assert repr(Interval(1, 2, True, False)) == "(1, 2]"
        assert "inf" in repr(Interval.everything())


class TestIntersect:
    def test_overlapping(self):
        a = Interval(1, 5)
        b = Interval(3, 8)
        got = a.intersect(b)
        assert (got.lo, got.hi) == (3, 5)

    def test_disjoint_is_empty(self):
        assert Interval(1, 2).intersect(Interval(4, 5)).is_empty

    def test_open_flag_propagates_on_equal_bounds(self):
        a = Interval(1, 5, lo_open=True)
        b = Interval(1, 5, hi_open=True)
        got = a.intersect(b)
        assert got.lo_open and got.hi_open

    def test_unbounded_sides(self):
        a = Interval.at_most(5)
        b = Interval.at_least(2)
        got = a.intersect(b)
        assert (got.lo, got.hi) == (2, 5)


bounded = st.integers(min_value=-20, max_value=20)
maybe_bound = st.one_of(st.none(), bounded)
intervals = st.builds(Interval, maybe_bound, maybe_bound,
                      st.booleans(), st.booleans())


@given(intervals, intervals, bounded)
def test_intersection_contains_iff_both_contain(a, b, x):
    both = a.contains(x) and b.contains(x)
    assert a.intersect(b).contains(x) == both


@given(intervals, bounded)
def test_empty_interval_contains_nothing(iv, x):
    if iv.is_empty:
        assert not iv.contains(x)
