"""Serialisation wrapper tests (§5.1 locking): multi-threaded updates and
synopsis requests must leave the maintainer in a consistent state."""

import random
import threading

from repro import (
    Column,
    Database,
    JoinExecutor,
    JoinSynopsisMaintainer,
    SerializedMaintainer,
    SerializedManager,
    SynopsisManager,
    SynopsisSpec,
    TableSchema,
    parse_query,
)


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def test_concurrent_inserts_and_reads():
    db = make_db()
    wrapped = SerializedMaintainer(JoinSynopsisMaintainer(
        db, SQL, spec=SynopsisSpec.fixed_size(20), seed=0,
    ))
    errors = []

    def writer(worker):
        rng = random.Random(worker)
        try:
            tids = []
            for i in range(120):
                alias = "r" if rng.random() < 0.5 else "s"
                tid = wrapped.insert(alias, (rng.randrange(5), i))
                tids.append((alias, tid))
                if rng.random() < 0.2 and tids:
                    a, t = tids.pop(rng.randrange(len(tids)))
                    wrapped.delete(a, t)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def reader():
        try:
            for _ in range(200):
                samples = wrapped.synopsis()
                assert len(samples) <= 20
                wrapped.total_results()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(w,))
               for w in range(4)]
    threads.append(threading.Thread(target=reader))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # final state must be exactly consistent with the surviving tuples
    query = parse_query(SQL, db)
    exact = set(JoinExecutor(db, query).results())
    assert wrapped.total_results() == len(exact)
    assert set(wrapped.synopsis()) <= exact
    wrapped.maintainer.engine.graph.check_invariants()


def test_concurrent_manager():
    db = make_db()
    manager = SerializedManager(SynopsisManager(db, seed=1))
    manager.register("rs", SQL, spec=SynopsisSpec.fixed_size(10))
    errors = []

    def worker(seed):
        rng = random.Random(seed)
        try:
            for i in range(100):
                name = "r" if rng.random() < 0.5 else "s"
                manager.insert(name, (rng.randrange(4), i))
                if rng.random() < 0.3:
                    manager.synopsis("rs")
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    query = parse_query(SQL, db)
    exact = set(JoinExecutor(db, query).results())
    assert manager.total_results("rs") == len(exact)


def test_wrapper_passthrough():
    db = make_db()
    wrapped = SerializedMaintainer(JoinSynopsisMaintainer(
        db, SQL, spec=SynopsisSpec.fixed_size(5), seed=0,
    ))
    wrapped.insert("r", (1, 10))
    wrapped.insert("s", (1, 20))
    assert wrapped.total_results() == 1
    assert wrapped.synopsis() == [(0, 0)]
    (rows,) = wrapped.synopsis_rows()
    assert rows == ((1, 10), (1, 20))
