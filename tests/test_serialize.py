"""Serialisation wrapper tests (§5.1 locking): multi-threaded updates and
synopsis requests must leave the maintainer in a consistent state."""

import inspect
import random
import threading

import pytest

from repro import (
    Column,
    Database,
    JoinExecutor,
    JoinSynopsisMaintainer,
    MaintainerConfig,
    SerializedMaintainer,
    SerializedManager,
    SynopsisManager,
    SynopsisSpec,
    TableSchema,
    parse_query,
)


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def test_concurrent_inserts_and_reads():
    db = make_db()
    wrapped = SerializedMaintainer(JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(20), seed=0)))
    errors = []

    def writer(worker):
        rng = random.Random(worker)
        try:
            tids = []
            for i in range(120):
                alias = "r" if rng.random() < 0.5 else "s"
                tid = wrapped.insert(alias, (rng.randrange(5), i))
                tids.append((alias, tid))
                if rng.random() < 0.2 and tids:
                    a, t = tids.pop(rng.randrange(len(tids)))
                    wrapped.delete(a, t)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def reader():
        try:
            for _ in range(200):
                samples = wrapped.synopsis()
                assert len(samples) <= 20
                wrapped.total_results()
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(w,))
               for w in range(4)]
    threads.append(threading.Thread(target=reader))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # final state must be exactly consistent with the surviving tuples
    query = parse_query(SQL, db)
    exact = set(JoinExecutor(db, query).results())
    assert wrapped.total_results() == len(exact)
    assert set(wrapped.synopsis()) <= exact
    wrapped.maintainer.engine.graph.check_invariants()


def test_concurrent_manager():
    db = make_db()
    manager = SerializedManager(SynopsisManager(db, MaintainerConfig(seed=1)))
    manager.register(
        "rs", SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
    errors = []

    def worker(seed):
        rng = random.Random(seed)
        try:
            for i in range(100):
                name = "r" if rng.random() < 0.5 else "s"
                manager.insert(name, (rng.randrange(4), i))
                if rng.random() < 0.3:
                    manager.synopsis("rs")
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    query = parse_query(SQL, db)
    exact = set(JoinExecutor(db, query).results())
    assert manager.total_results("rs") == len(exact)


def test_facades_cover_wrapped_public_surface():
    """Anti-drift regression: every public method added to the wrapped
    classes must gain a locked passthrough on its facade.  ``apply``
    and ``stats`` once drifted out of sync; this pins the full surface
    so the next addition fails loudly here."""
    def public_methods(cls):
        return {n for n, _ in inspect.getmembers(cls, inspect.isfunction)
                if not n.startswith("_")}

    # `maintainer` is deliberately unwrapped: it hands out the raw
    # (unsynchronized) maintainer and only makes sense via the
    # `.manager` escape hatch.
    assert public_methods(JoinSynopsisMaintainer) <= \
        public_methods(SerializedMaintainer)
    assert public_methods(SynopsisManager) - {"maintainer"} <= \
        public_methods(SerializedManager)


def test_facade_apply_batch_stats_passthrough():
    """The passthroughs drift once cost us: exercise them against
    the wrapped maintainer directly."""
    from repro.core.stats_api import DeleteOp, InsertOp

    db = make_db()
    wrapped = SerializedMaintainer(JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(5), seed=0)))
    tids = wrapped.apply_batch(
        [InsertOp("r", (1, 10)), InsertOp("r", (2, 11))]).tids
    assert list(tids) == [0, 1]
    results = wrapped.apply([InsertOp("s", (1, 20)),
                             DeleteOp("r", tids[1])])
    assert results.tids == (0, None)
    stats = wrapped.stats()
    assert stats == wrapped.maintainer.stats()
    assert stats.metrics["inserts"] == 3
    assert stats.metrics["deletes"] == 1

    mgr = SerializedManager(
        SynopsisManager(make_db(), MaintainerConfig(seed=1)))
    mgr.register(
        "rs", SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(5)))
    assert mgr.names() == ["rs"]
    mgr.apply_batch([InsertOp("r", (1, 10))])
    mgr.apply([InsertOp("s", (1, 20))])
    assert mgr.total_results("rs") == 1
    assert mgr.stats() == mgr.manager.stats()


def test_wrapper_passthrough():
    db = make_db()
    wrapped = SerializedMaintainer(JoinSynopsisMaintainer(
        db, SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(5), seed=0)))
    wrapped.insert("r", (1, 10))
    wrapped.insert("s", (1, 20))
    assert wrapped.total_results() == 1
    assert wrapped.synopsis() == [(0, 0)]
    (rows,) = wrapped.synopsis_rows()
    assert rows == ((1, 10), (1, 20))
