"""The SQL front door (repro.aqp) and the hardened estimators.

Covers the registry over a bare manager and over a service, the
family-dispatched estimation (uniform / weighted / subset), the typed
parse/plan errors, spec provisioning from plans, and the degenerate
estimator semantics pinned by docs/sql.md.
"""

import math

import pytest

from repro import (
    Column,
    Database,
    InsertOp,
    MaintainerConfig,
    QueryRegistry,
    SynopsisManager,
    SynopsisService,
    SynopsisSpec,
    TableSchema,
)
from repro.analytics import (
    Estimate,
    estimate_avg,
    estimate_count,
    estimate_groups,
    estimate_sum,
    hansen_hurwitz,
    horvitz_thompson,
    ratio_estimate,
    zscore,
)
from repro.core.manager import spec_for_plan
from repro.errors import (
    InvalidArgumentError,
    PlanError,
    QueryParseError,
    SynopsisError,
)
from repro.query.parser import parse_query
from repro.query.planner import plan_query

SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


def loaded_manager(spec=None, n=6):
    """A manager with ``q`` registered and ``n`` matching pairs."""
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    manager = SynopsisManager(db, MaintainerConfig(seed=7))
    manager.register("q", SQL, MaintainerConfig(
        spec=spec or SynopsisSpec.fixed_size(50)))
    manager.apply_batch(
        [InsertOp("r", (a, a * 10)) for a in range(n)]
        + [InsertOp("s", (a, a % 2)) for a in range(n)])
    return db, manager


# ---------------------------------------------------------------------------
# satellite: degenerate estimator semantics
# ---------------------------------------------------------------------------
class TestDegenerateEstimators:
    def test_count_empty_population_is_exact_zero(self):
        est = estimate_count([], 0, lambda s: True)
        assert est == Estimate(0.0, 0.0)
        assert est.ci() == (0.0, 0.0)

    def test_count_empty_sample_nonempty_population(self):
        est = estimate_count([], 100, lambda s: True)
        assert est.value == 0.0
        assert math.isinf(est.stderr)
        assert est.ci() is None

    def test_sum_degenerates_like_count(self):
        assert estimate_sum([], 0, lambda s: s) == Estimate(0.0, 0.0)
        est = estimate_sum([], 9, lambda s: s)
        assert est.ci() is None

    def test_single_sample_zero_variance(self):
        est = estimate_sum([4], 10, lambda s: s)
        assert est.value == 40.0
        assert est.stderr == 0.0
        lo, hi = est.ci(0.99)
        assert lo == hi == 40.0

    def test_avg_of_nothing_is_undefined(self):
        est = estimate_avg([], lambda s: s)
        assert math.isnan(est.value)
        assert est.ci() is None

    def test_avg_fully_filtered_out(self):
        est = estimate_avg([1, 2, 3], lambda s: s,
                           predicate=lambda s: s > 99)
        assert math.isnan(est.value)
        assert est.ci() is None

    def test_groupby_empty_population(self):
        assert estimate_groups([], 0, key_of=lambda s: s) == {}

    def test_hansen_hurwitz_degenerates(self):
        assert hansen_hurwitz([], [], 0, lambda s: 1.0) == \
            Estimate(0.0, 0.0)
        est = hansen_hurwitz([], [], 25, lambda s: 1.0)
        assert est.value == 0.0 and est.ci() is None
        with pytest.raises(InvalidArgumentError):
            hansen_hurwitz([1], [], 25, lambda s: 1.0)
        with pytest.raises(InvalidArgumentError):
            hansen_hurwitz([1], [0.0], 25, lambda s: 1.0)

    def test_hansen_hurwitz_exact_on_weight_itself(self):
        # each draw contributes W * w_i / w_i == W: zero variance
        est = hansen_hurwitz([2, 5], [2.0, 5.0], 7.0, lambda s: s)
        assert est == Estimate(7.0, 0.0)

    def test_horvitz_thompson_degenerates(self):
        est = horvitz_thompson([], [], lambda s: 1.0)
        assert est.value == 0.0 and est.ci() is None
        with pytest.raises(InvalidArgumentError):
            horvitz_thompson([1], [0.0], lambda s: 1.0)
        with pytest.raises(InvalidArgumentError):
            horvitz_thompson([1], [1.5], lambda s: 1.0)
        with pytest.raises(InvalidArgumentError):
            horvitz_thompson([1, 2], [0.5], lambda s: 1.0)

    def test_horvitz_thompson_certain_inclusion_is_exact(self):
        est = horvitz_thompson([3, 4], [1.0, 1.0], lambda s: s)
        assert est == Estimate(7.0, 0.0)

    def test_ratio_estimate_zero_denominator(self):
        est = ratio_estimate(Estimate(5.0, 1.0), Estimate(0.0, 0.0))
        assert math.isnan(est.value)
        assert est.ci() is None

    def test_ratio_estimate_infinite_inputs_keep_point(self):
        est = ratio_estimate(Estimate(6.0, float("inf")),
                             Estimate(2.0, 0.0))
        assert est.value == 3.0
        assert est.ci() is None

    def test_zscore_validation(self):
        assert abs(zscore(0.95) - 1.96) < 0.005
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(InvalidArgumentError):
                zscore(bad)


# ---------------------------------------------------------------------------
# spec provisioning from plans
# ---------------------------------------------------------------------------
class TestSpecForPlan:
    def plan(self):
        db = make_db()
        return plan_query(parse_query(SQL, db), db)

    def test_default_is_fixed_uniform(self):
        spec = spec_for_plan(self.plan(), size=77)
        assert spec.size == 77
        assert spec == SynopsisSpec.fixed_size(77)

    def test_weight_column_switches_family(self):
        spec = spec_for_plan(self.plan(), size=10, weight_column="r.x")
        assert spec == SynopsisSpec.weighted_fixed_size(10, "r.x")

    def test_bad_weight_column_shapes(self):
        plan = self.plan()
        with pytest.raises(PlanError, match="alias.attr"):
            spec_for_plan(plan, weight_column="x")
        with pytest.raises(PlanError, match="unknown alias"):
            spec_for_plan(plan, weight_column="t.x")
        with pytest.raises(PlanError, match="no column"):
            spec_for_plan(plan, weight_column="r.nope")


# ---------------------------------------------------------------------------
# the registry over a bare manager
# ---------------------------------------------------------------------------
class TestRegistryOnManager:
    def test_register_and_estimate_count(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        q = registry.get("q")
        payload = q.estimate("count")
        # sample covers the whole join: the count is exact
        assert payload["value"] == 6
        assert payload["stderr"] == 0.0
        assert payload["ci"] == [6.0, 6.0]
        assert payload["family"] == "uniform"
        assert payload["total_results"] == 6
        assert payload["name"] == "q"
        assert "epoch" not in payload

    def test_register_by_sql_provisions_synopsis(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=1))
        registry = QueryRegistry(manager)
        q = registry.register(SQL, "orders", size=5)
        assert q.name == "orders"
        assert manager.names() == ["orders"]
        assert manager.maintainer("orders").requested_spec.size == 5
        assert "orders" in registry
        assert registry.names() == ["orders"]

    def test_auto_names_skip_taken(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=1))
        manager.register("q1", SQL)
        registry = QueryRegistry(manager)
        q = registry.register(SQL)
        assert q.name == "q2"

    def test_duplicate_name_rejected(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        with pytest.raises(SynopsisError, match="already registered"):
            registry.register(SQL, "q")

    def test_unknown_query_lists_known(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        with pytest.raises(SynopsisError, match="known: \\['q'\\]"):
            registry.get("nope")
        assert "nope" not in registry

    def test_parse_error_carries_position(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        with pytest.raises(QueryParseError) as err:
            registry.register("SELECT * FROM r, s WHERE ???")
        assert err.value.position == 25
        assert err.value.sql.startswith("SELECT")

    def test_where_filter(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        payload = registry.get("q").estimate("count", where=[
            {"column": "s.y", "op": "=", "value": 0}])
        assert payload["value"] == 3  # a in {0, 2, 4}

    def test_sum_and_avg(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        q = registry.get("q")
        total = q.estimate("sum", column="r.x")
        assert total["value"] == sum(a * 10 for a in range(6))
        avg = q.estimate("avg", column="r.x")
        assert avg["value"] == pytest.approx(25.0)

    def test_sum_requires_column(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        with pytest.raises(InvalidArgumentError, match="column"):
            registry.get("q").estimate("sum")

    def test_unknown_aggregate_rejected(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        with pytest.raises(InvalidArgumentError, match="median"):
            registry.get("q").estimate("median")

    def test_group_by(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        payload = registry.get("q").estimate("count", group_by="s.y")
        assert payload["group_by"] == "s.y"
        groups = {g["key"]: g["value"] for g in payload["groups"]}
        assert groups == {0: 3, 1: 3}
        for g in payload["groups"]:
            assert g["ci"] is not None

    def test_describe_and_explain(self):
        db, manager = loaded_manager()
        registry = QueryRegistry(manager)
        q = registry.get("q")
        desc = q.describe()
        assert desc["name"] == "q" and desc["sql"] == SQL
        assert desc["family"] == "uniform"
        assert desc["total_results"] == 6
        assert q.explain() == q.explain()  # deterministic
        assert registry.describe_all() == [desc]

    def test_manager_register_sql_shortcut(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=3))
        manager.register_sql("direct", SQL, size=9)
        assert manager.maintainer("direct").requested_spec.size == 9
        with pytest.raises(QueryParseError):
            manager.register_sql("bad", "SELECT FROM nothing")


# ---------------------------------------------------------------------------
# family-dispatched estimation
# ---------------------------------------------------------------------------
class TestFamilies:
    def test_weighted_registration_and_sum_is_exact_on_weight(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=11))
        registry = QueryRegistry(manager)
        q = registry.register(SQL, "w", size=4, weight_column="r.x")
        manager.apply_batch(
            [InsertOp("r", (a, a + 1)) for a in range(8)]
            + [InsertOp("s", (a, a % 2)) for a in range(8)])
        desc = q.describe()
        assert desc["family"] == "weighted"
        # the weighted graph's total is W = sum of weights; summing the
        # weight column itself has zero variance under Hansen-Hurwitz
        W = sum(a + 1 for a in range(8))
        assert desc["total_results"] == W
        payload = q.estimate("sum", column="r.x")
        assert payload["value"] == pytest.approx(W)
        assert payload["stderr"] == pytest.approx(0.0)

    def test_subset_registration_and_count_covers(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=5))
        manager.register("p", SQL, MaintainerConfig(
            spec=SynopsisSpec.subset(0.5, weight_column="r.x")))
        manager.apply_batch(
            [InsertOp("r", (a, 1 + a % 3)) for a in range(40)]
            + [InsertOp("s", (a, a % 2)) for a in range(40)])
        registry = QueryRegistry(manager)
        payload = registry.get("p").estimate("count", confidence=0.99)
        assert payload["family"] == "subset"
        lo, hi = payload["ci"]
        assert lo <= 40 <= hi

    def test_empty_join_is_exact_zero_for_every_family(self):
        for spec in (SynopsisSpec.fixed_size(5),
                     SynopsisSpec.weighted_fixed_size(5, "r.x"),
                     SynopsisSpec.subset(0.5, weight_column="r.x")):
            db = make_db()
            manager = SynopsisManager(db, MaintainerConfig(seed=2))
            manager.register("e", SQL, MaintainerConfig(spec=spec))
            registry = QueryRegistry(manager)
            payload = registry.get("e").estimate("count")
            assert payload["value"] == 0.0
            assert payload["ci"] == [0.0, 0.0], spec


# ---------------------------------------------------------------------------
# the registry over a service (epoch-consistent views)
# ---------------------------------------------------------------------------
class TestRegistryOnService:
    def test_estimates_from_published_views(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=9))
        with SynopsisService(manager) as service:
            registry = QueryRegistry(service)
            q = registry.register(SQL, "live", size=50)
            service.apply_batch(
                [InsertOp("r", (a, a)) for a in range(5)]
                + [InsertOp("s", (a, a)) for a in range(5)])
            payload = q.estimate("count")
            assert payload["value"] == 5
            assert payload["epoch"] == service.epoch
            assert registry.describe_all()[0]["name"] == "live"

    def test_single_maintainer_service_is_rejected(self):
        from repro import JoinSynopsisMaintainer

        db = make_db()
        m = JoinSynopsisMaintainer(db, SQL, MaintainerConfig(seed=1))
        with SynopsisService(m) as service:
            registry = QueryRegistry(service)
            from repro.errors import ServiceError
            with pytest.raises((ServiceError, SynopsisError)):
                registry.get("q")
