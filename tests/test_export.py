"""CSV export round-trip tests."""

from repro.bench.export import read_csv, write_series_csv, \
    write_summary_csv
from repro.bench.harness import BenchRun, Checkpoint


def fake_run(engine="sjoin-opt", workload="QY", aborted=False):
    run = BenchRun(engine=engine, workload=workload,
                   planned_operations=100, operations=80,
                   elapsed=2.0, aborted=aborted)
    run.checkpoints = [
        Checkpoint(operations=40, progress=0.4, instant_throughput=20.0,
                   elapsed=1.0, total_results=1234, synopsis_size=10),
        Checkpoint(operations=80, progress=0.8, instant_throughput=40.0,
                   elapsed=2.0, total_results=None, synopsis_size=None),
    ]
    return run


def test_series_round_trip(tmp_path):
    path = str(tmp_path / "series.csv")
    rows = write_series_csv(path, [fake_run(), fake_run(engine="sj")])
    assert rows == 4
    back = read_csv(path)
    assert len(back) == 4
    assert back[0]["engine"] == "sjoin-opt"
    assert back[0]["total_results"] == "1234"
    assert back[1]["total_results"] == ""
    assert float(back[0]["instant_throughput"]) == 20.0


def test_summary_round_trip(tmp_path):
    path = str(tmp_path / "summary.csv")
    rows = write_summary_csv(path, [fake_run(aborted=True)])
    assert rows == 1
    (row,) = read_csv(path)
    assert row["aborted"] == "1"
    assert float(row["avg_throughput"]) == 40.0
    assert float(row["progress_pct"]) == 80.0


def test_empty_runs(tmp_path):
    path = str(tmp_path / "empty.csv")
    assert write_series_csv(path, []) == 0
    assert read_csv(path) == []
