"""Edge cases across the stack: degenerate plans, single tables, fully
collapsed queries, float and negative domains, empty streams."""

import random

import pytest

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    DataType,
    ForeignKey,
    JoinExecutor,
    JoinSynopsisMaintainer,
    SJoinEngine,
    SynopsisSpec,
    TableSchema,
    parse_query,
)


class TestSingleTableQuery:
    """n = 1: the synopsis degenerates to plain reservoir sampling over
    one table — the machinery must still work end-to-end."""

    def make(self, m=5):
        db = Database()
        db.create_table(TableSchema("t", [Column("a"), Column("b")]))
        return db, JoinSynopsisMaintainer(
            db, "SELECT * FROM t", MaintainerConfig(spec=SynopsisSpec.fixed_size(m), engine="sjoin", seed=0))

    def test_sampling_single_table(self):
        db, m = self.make()
        tids = [m.insert("t", (i, i)) for i in range(50)]
        assert m.total_results() == 50
        synopsis = m.synopsis()
        assert len(synopsis) == 5
        assert all(t[0] in tids for t in synopsis)

    def test_deletion_single_table(self):
        db, m = self.make(3)
        tids = [m.insert("t", (i, i)) for i in range(10)]
        for tid in tids[:8]:
            m.delete("t", tid)
        assert m.total_results() == 2
        assert sorted(t[0] for t in m.synopsis()) == [8, 9]

    def test_single_table_with_filter(self):
        db = Database()
        db.create_table(TableSchema("t", [Column("a")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM t WHERE t.a < 5", MaintainerConfig(spec=SynopsisSpec.fixed_size(100), engine="sjoin", seed=0))
        for i in range(10):
            m.insert("t", (i,))
        assert m.total_results() == 5


class TestFullyCollapsedQuery:
    """Every edge is an FK join: SJoin-opt reduces the plan to ONE node;
    each combined tuple is itself a join result."""

    def make_db(self):
        db = Database()
        db.create_table(TableSchema(
            "dim", [Column("d_id"), Column("x")], primary_key=("d_id",)))
        db.create_table(TableSchema(
            "fact", [Column("f_dim"), Column("v")],
            foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),)))
        return db

    def test_single_node_plan(self):
        db = self.make_db()
        query = parse_query(
            "SELECT * FROM fact, dim WHERE fact.f_dim = dim.d_id", db)
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(4),
                             fk_optimize=True, seed=0)
        assert len(engine.plan.nodes) == 1
        assert engine.plan.nodes[0].is_combined

    def test_maintenance_on_single_node(self):
        db = self.make_db()
        query = parse_query(
            "SELECT * FROM fact, dim WHERE fact.f_dim = dim.d_id", db)
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(4),
                             fk_optimize=True, seed=0)
        for d in range(3):
            engine.insert("dim", (d, d * 10))
        fact_tids = [engine.insert("fact", (i % 3, i)) for i in range(12)]
        assert engine.total_results() == 12
        exact = set(JoinExecutor(db, query).results())
        assert set(engine.synopsis_results()) <= exact
        for tid in fact_tids[:10]:
            engine.delete("fact", tid)
        assert engine.total_results() == 2
        assert len(engine.synopsis_results()) == 2


class TestValueDomains:
    def test_float_band_join(self):
        db = Database()
        db.create_table(TableSchema("a", [Column("x", DataType.FLOAT)]))
        db.create_table(TableSchema("b", [Column("x", DataType.FLOAT)]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM a, b WHERE |a.x - b.x| <= 0.5", MaintainerConfig(spec=SynopsisSpec.fixed_size(50), engine="sjoin", seed=0))
        rng = random.Random(3)
        for _ in range(40):
            m.insert("a", (rng.random() * 4,))
            m.insert("b", (rng.random() * 4,))
        exact = JoinExecutor(db, m.query).count()
        assert m.total_results() == exact

    def test_negative_values_and_offsets(self):
        db = Database()
        db.create_table(TableSchema("a", [Column("x")]))
        db.create_table(TableSchema("b", [Column("x")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM a, b WHERE a.x <= 2 * b.x - 3", MaintainerConfig(spec=SynopsisSpec.fixed_size(50), engine="sjoin", seed=0))
        rng = random.Random(4)
        for _ in range(30):
            m.insert("a", (rng.randrange(-10, 10),))
            m.insert("b", (rng.randrange(-10, 10),))
        exact = JoinExecutor(db, m.query).count()
        assert m.total_results() == exact

    def test_string_equality_join(self):
        db = Database()
        db.create_table(TableSchema(
            "a", [Column("k", DataType.STR), Column("v")]))
        db.create_table(TableSchema(
            "b", [Column("k", DataType.STR), Column("v")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM a, b WHERE a.k = b.k", MaintainerConfig(spec=SynopsisSpec.fixed_size(10), engine="sjoin", seed=0))
        words = ["ant", "bee", "cat"]
        rng = random.Random(5)
        for i in range(30):
            m.insert("a", (rng.choice(words), i))
            m.insert("b", (rng.choice(words), i))
        exact = JoinExecutor(db, m.query).count()
        assert m.total_results() == exact


class TestEmptyAndDegenerate:
    def test_synopsis_on_empty_database(self):
        db = Database()
        db.create_table(TableSchema("a", [Column("x")]))
        db.create_table(TableSchema("b", [Column("x")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM a, b WHERE a.x = b.x", MaintainerConfig(spec=SynopsisSpec.fixed_size(5), seed=0))
        assert m.synopsis() == []
        assert m.total_results() == 0

    def test_delete_everything_then_refill(self):
        db = Database()
        db.create_table(TableSchema("a", [Column("x")]))
        db.create_table(TableSchema("b", [Column("x")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM a, b WHERE a.x = b.x", MaintainerConfig(spec=SynopsisSpec.fixed_size(5), engine="sjoin", seed=0))
        a_tids = [m.insert("a", (i % 2,)) for i in range(4)]
        b_tids = [m.insert("b", (i % 2,)) for i in range(4)]
        for tid in a_tids:
            m.delete("a", tid)
        assert m.total_results() == 0
        assert m.synopsis() == []
        # refill: the engine must recover cleanly
        for i in range(4):
            m.insert("a", (i % 2,))
        exact = JoinExecutor(db, m.query).count()
        assert m.total_results() == exact
        assert len(m.synopsis()) == 5

    def test_with_replacement_survives_total_churn(self):
        db = Database()
        db.create_table(TableSchema("a", [Column("x")]))
        db.create_table(TableSchema("b", [Column("x")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM a, b WHERE a.x = b.x", MaintainerConfig(spec=SynopsisSpec.with_replacement(4), engine="sjoin", seed=0))
        for round_no in range(3):
            a = m.insert("a", (1,))
            b = m.insert("b", (1,))
            assert len(m.engine.raw_samples()) == 4
            m.delete("a", a)
            assert m.engine.raw_samples() == []
        assert m.total_results() == 0

    def test_insert_after_large_deletion_wave(self):
        rng = random.Random(6)
        db = Database()
        db.create_table(TableSchema("a", [Column("x")]))
        db.create_table(TableSchema("b", [Column("x")]))
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM a, b WHERE a.x = b.x", MaintainerConfig(spec=SynopsisSpec.fixed_size(6), engine="sjoin", seed=1))
        tids = []
        for i in range(60):
            tids.append(("a", m.insert("a", (rng.randrange(3),))))
            tids.append(("b", m.insert("b", (rng.randrange(3),))))
        rng.shuffle(tids)
        for alias, tid in tids[:100]:
            m.delete(alias, tid)
        exact = set(JoinExecutor(db, m.query).results())
        assert m.total_results() == len(exact)
        assert set(m.synopsis()) <= exact
        assert len(m.synopsis()) == min(6, len(exact))
