"""Predicate model tests.

The central property (which the whole weighted join graph relies on):
``matches(l, r)`` holds iff ``r`` is in ``interval_for_right(l)`` iff
``l`` is in ``interval_for_left(r)`` — verified exhaustively for random
predicate parameterisations via hypothesis.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import BandPredicate, ComparisonOp, JoinPredicate, QueryError
from repro.query.predicates import FilterPredicate, MultiTableFilter


class TestComparisonOp:
    def test_tests(self):
        assert ComparisonOp.LT.test(1, 2)
        assert ComparisonOp.LE.test(2, 2)
        assert ComparisonOp.GT.test(3, 2)
        assert ComparisonOp.GE.test(2, 2)
        assert ComparisonOp.EQ.test(2, 2)
        assert not ComparisonOp.EQ.test(2, 3)

    def test_flipped_is_involution(self):
        for op in ComparisonOp:
            assert op.flipped().flipped() is op

    def test_flip_swaps_operands(self):
        for op in ComparisonOp:
            for a in range(-2, 3):
                for b in range(-2, 3):
                    assert op.test(a, b) == op.flipped().test(b, a)


class TestJoinPredicate:
    def test_plain_equality(self):
        p = JoinPredicate("r", "a", ComparisonOp.EQ, "s", "b")
        assert p.is_plain_equality
        assert p.matches(3, 3)
        assert not p.matches(3, 4)
        assert p.interval_for_right(3).is_point
        assert p.interval_for_left(4).contains(4)

    def test_plain_equality_works_on_strings(self):
        p = JoinPredicate("r", "a", ComparisonOp.EQ, "s", "b")
        assert p.matches("x", "x")
        assert p.interval_for_right("x").contains("x")

    def test_arithmetic_equality(self):
        # r.a = 2*s.b + 1
        p = JoinPredicate("r", "a", ComparisonOp.EQ, "s", "b",
                          coeff=2, offset=1)
        assert p.matches(7, 3)
        assert not p.matches(7, 4)
        assert p.interval_for_left(3).contains(7)
        # inverse: s.b = (r.a - 1)/2, fractional bounds stay exact
        iv = p.interval_for_right(8)
        assert not iv.contains(3)
        assert not iv.contains(4)  # (8-1)/2 = 3.5: no integer matches

    def test_inequality_direction(self):
        # r.a < s.b
        p = JoinPredicate("r", "a", ComparisonOp.LT, "s", "b")
        assert p.interval_for_right(5).contains(6)
        assert not p.interval_for_right(5).contains(5)
        assert p.interval_for_left(5).contains(4)
        assert not p.interval_for_left(5).contains(5)

    def test_negative_coefficient_flips_direction(self):
        # r.a <= -1*s.b  <=>  s.b <= -r.a
        p = JoinPredicate("r", "a", ComparisonOp.LE, "s", "b", coeff=-1)
        assert p.matches(-5, 5)
        assert p.interval_for_right(-5).contains(5)
        assert not p.interval_for_right(-5).contains(6)

    def test_zero_coefficient_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate("r", "a", ComparisonOp.EQ, "s", "b", coeff=0)

    def test_self_join_predicate_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate("r", "a", ComparisonOp.EQ, "r", "b")

    def test_sides_and_attrs(self):
        p = JoinPredicate("r", "a", ComparisonOp.EQ, "s", "b")
        assert p.sides() == ("r", "s")
        assert p.attr_of("r") == "a"
        assert p.attr_of("s") == "b"
        assert p.other("r") == "s"
        with pytest.raises(QueryError):
            p.attr_of("zzz")

    def test_matches_side(self):
        p = JoinPredicate("r", "a", ComparisonOp.LT, "s", "b")
        assert p.matches_side("r", 1, 2)  # 1 < 2
        assert p.matches_side("s", 2, 1)  # 1 < 2, value on s side
        assert not p.matches_side("s", 1, 2)

    def test_str(self):
        p = JoinPredicate("r", "a", ComparisonOp.LE, "s", "b",
                          coeff=2, offset=3)
        assert str(p) == "r.a <= 2*s.b + 3"


class TestBandPredicate:
    def test_basic_band(self):
        p = BandPredicate("r", "a", "s", "b", width=2)
        assert p.matches(5, 3)
        assert p.matches(5, 7)
        assert not p.matches(5, 8)
        iv = p.interval_for_right(5)
        assert iv.contains(3) and iv.contains(7) and not iv.contains(8)

    def test_strict_band(self):
        p = BandPredicate("r", "a", "s", "b", width=2, inclusive=False)
        assert not p.matches(5, 3)
        assert p.matches(5, 4)
        assert not p.interval_for_left(3).contains(5)

    def test_band_with_coefficient(self):
        # |r.a - 2*s.b| <= 1
        p = BandPredicate("r", "a", "s", "b", width=1, coeff=2)
        assert p.matches(7, 3)
        assert p.matches(7, 4)
        assert not p.matches(7, 5)
        iv = p.interval_for_right(7)
        assert iv.contains(3) and iv.contains(4) and not iv.contains(5)

    def test_negative_width_rejected(self):
        with pytest.raises(QueryError):
            BandPredicate("r", "a", "s", "b", width=-1)

    def test_zero_width_is_equality(self):
        p = BandPredicate("r", "a", "s", "b", width=0)
        assert p.matches(3, 3)
        assert not p.matches(3, 4)

    def test_str(self):
        p = BandPredicate("r", "a", "s", "b", width=3, inclusive=False)
        assert str(p) == "|r.a - s.b| < 3"


class TestFilterPredicate:
    def test_matches(self):
        f = FilterPredicate("r", "a", ComparisonOp.GE, 10)
        assert f.matches(10)
        assert not f.matches(9)

    def test_str(self):
        assert str(FilterPredicate("r", "a", ComparisonOp.LT, 5)) == \
            "r.a < 5"


class TestMultiTableFilter:
    def test_from_theta(self):
        p = JoinPredicate("r", "a", ComparisonOp.LE, "s", "b")
        f = MultiTableFilter.from_theta(p)
        assert f.aliases == ("r", "s")
        assert f.matches((1, 2))
        assert not f.matches((2, 1))
        assert "r.a <= s.b" in str(f)

    def test_custom_predicate(self):
        f = MultiTableFilter(
            inputs=(("r", "a"), ("s", "b"), ("t", "c")),
            predicate=lambda a, b, c: a + b == c,
            description="a+b=c",
        )
        assert f.matches((1, 2, 3))
        assert not f.matches((1, 2, 4))


# ----------------------------------------------------------------------
# the load-bearing property: predicate <-> interval consistency
# ----------------------------------------------------------------------
values = st.integers(min_value=-8, max_value=8)
ops = st.sampled_from(list(ComparisonOp))
coeffs = st.sampled_from([1, 2, 3, -1, -2])
offsets = st.integers(min_value=-3, max_value=3)


@given(ops, coeffs, offsets, values, values)
def test_join_predicate_interval_consistency(op, coeff, offset, l, r):
    p = JoinPredicate("r", "a", op, "s", "b", coeff=coeff, offset=offset)
    expected = p.matches(l, r)
    assert p.interval_for_right(l).contains(r) == expected
    assert p.interval_for_left(r).contains(l) == expected


@given(coeffs, st.integers(min_value=0, max_value=4), st.booleans(),
       values, values)
def test_band_predicate_interval_consistency(coeff, width, inclusive, l, r):
    p = BandPredicate("r", "a", "s", "b", width=width, coeff=coeff,
                      inclusive=inclusive)
    expected = p.matches(l, r)
    assert p.interval_for_right(l).contains(r) == expected
    assert p.interval_for_left(r).contains(l) == expected
