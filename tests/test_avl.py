"""Aggregate AVL tree tests: unit behaviour + model-based property tests.

The model is a plain Python list of (key, tie, value) kept sorted; every
tree query (range_sum, select, prefix_sum, iteration) is cross-checked
against brute force over the model after random interleavings of insert /
delete / value-change operations.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.avl import AggregateTree, IndexRange
from repro.query.intervals import Interval


class Item:
    """A mutable item with per-slot values (stands in for a vertex)."""

    def __init__(self, values):
        self.values = list(values)


def value_of(item, slot):
    return item.values[slot]


class TestUnit:
    def test_empty(self):
        tree = AggregateTree(1, value_of)
        assert len(tree) == 0
        assert tree.total(0) == 0
        assert tree.select(0, 0) is None
        assert list(tree.iter_items()) == []

    def test_insert_and_total(self):
        tree = AggregateTree(1, value_of)
        for v in (3, 1, 4):
            tree.insert((v,), Item([v]))
        assert tree.total(0) == 8
        assert [i.values[0] for i in tree.iter_items()] == [1, 3, 4]

    def test_duplicate_keys_ordered_by_tie(self):
        tree = AggregateTree(1, value_of)
        a = tree.insert((5,), Item([1]))
        b = tree.insert((5,), Item([2]))
        assert a.tie < b.tie
        assert tree.total(0) == 3

    def test_find(self):
        tree = AggregateTree(0, value_of)
        tree.insert((2,), "two")
        tree.insert((7,), "seven")
        assert tree.find((7,)).item == "seven"
        assert tree.find((3,)) is None

    def test_refresh_propagates(self):
        tree = AggregateTree(1, value_of)
        item = Item([5])
        node = tree.insert((1,), item)
        tree.insert((2,), Item([10]))
        item.values[0] = 50
        tree.refresh(node)
        assert tree.total(0) == 60
        tree.check_invariants()

    def test_delete_by_handle(self):
        tree = AggregateTree(1, value_of)
        nodes = [tree.insert((v,), Item([v])) for v in range(10)]
        tree.delete(nodes[5])
        assert tree.total(0) == 45 - 5
        assert len(tree) == 9
        tree.check_invariants()

    def test_handles_survive_other_deletions(self):
        tree = AggregateTree(1, value_of)
        nodes = [tree.insert((v,), Item([v])) for v in range(30)]
        rng = random.Random(5)
        order = list(range(30))
        rng.shuffle(order)
        for pos in order:
            node = nodes[pos]
            # handle must still identify its own item
            assert node.item.values[0] == pos
            tree.delete(node)
            tree.check_invariants()
        assert len(tree) == 0

    def test_select_skips_zero_weight(self):
        tree = AggregateTree(1, value_of)
        tree.insert((1,), Item([0]))
        tree.insert((2,), Item([4]))
        tree.insert((3,), Item([0]))
        item, prefix = tree.select(0, 0)
        assert item.values[0] == 4 and prefix == 0
        assert tree.select(0, 4) is None

    def test_select_target_bounds(self):
        tree = AggregateTree(1, value_of)
        tree.insert((1,), Item([3]))
        with pytest.raises(ValueError):
            tree.select(0, -1)

    def test_prefix_sum(self):
        tree = AggregateTree(1, value_of)
        nodes = [tree.insert((v,), Item([v + 1])) for v in range(20)]
        for k, node in enumerate(nodes):
            expect = sum(v + 1 for v in range(k + 1))
            assert tree.prefix_sum(0, node) == expect
            assert tree.prefix_sum(0, node, inclusive=False) == \
                expect - (k + 1)

    def test_range_queries_with_prefix(self):
        tree = AggregateTree(1, value_of)
        for a in range(3):
            for b in range(4):
                tree.insert((a, b), Item([1]))
        rng = IndexRange((1,), Interval(1, 2))
        assert tree.range_sum(0, rng) == 2
        items = list(tree.iter_nodes(rng))
        assert [n.key for n in items] == [(1, 1), (1, 2)]

    def test_multi_slot(self):
        tree = AggregateTree(2, value_of)
        tree.insert((1,), Item([2, 30]))
        tree.insert((2,), Item([5, 70]))
        assert tree.total(0) == 7
        assert tree.total(1) == 100


# ----------------------------------------------------------------------
# model-based property tests
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "change"]),
        st.integers(min_value=0, max_value=15),   # key
        st.integers(min_value=0, max_value=9),    # value
    ),
    min_size=1, max_size=120,
)

range_strategy = st.tuples(
    st.integers(min_value=-1, max_value=16),
    st.integers(min_value=-1, max_value=16),
    st.booleans(), st.booleans(),
)


@settings(max_examples=120, deadline=None)
@given(ops_strategy, range_strategy, st.integers(0, 200))
def test_tree_matches_model(ops, rng_spec, target):
    tree = AggregateTree(1, value_of)
    model = []  # list of (key, node, item), insertion order
    for op, key, value in ops:
        if op == "insert" or not model:
            item = Item([value])
            node = tree.insert((key,), item)
            model.append((key, node, item))
        elif op == "delete":
            key_idx = (key * 7 + value) % len(model)
            _, node, _ = model.pop(key_idx)
            tree.delete(node)
        else:  # change value
            key_idx = (key * 5 + value) % len(model)
            _, node, item = model[key_idx]
            item.values[0] = value
            tree.refresh(node)
    tree.check_invariants()
    assert len(tree) == len(model)
    assert tree.total(0) == sum(i.values[0] for _, __, i in model)

    lo, hi, lo_open, hi_open = rng_spec
    interval = Interval(lo, hi, lo_open, hi_open)
    rng = IndexRange((), interval)
    in_range = [
        (key, node.tie, item) for key, node, item in model
        if interval.contains(key)
    ]
    in_range.sort(key=lambda x: (x[0], x[1]))
    # range_sum
    assert tree.range_sum(0, rng) == sum(i.values[0] for *_ , i in in_range)
    # iteration order
    got = [n.tie for n in tree.iter_nodes(rng)]
    assert got == [tie for _, tie, __ in in_range]
    # select: walk the prefix sums by brute force
    running = 0
    expected = None
    for key, tie, item in in_range:
        if running <= target < running + item.values[0]:
            expected = (item, running)
            break
        running += item.values[0]
    assert tree.select(0, target, rng) == expected


composite_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),    # prefix component
        st.integers(min_value=0, max_value=6),    # range component
        st.integers(min_value=0, max_value=9),    # value
    ),
    min_size=1, max_size=80,
)


@settings(max_examples=80, deadline=None)
@given(composite_ops,
       st.integers(min_value=0, max_value=3),
       st.integers(min_value=-1, max_value=7),
       st.integers(min_value=-1, max_value=7),
       st.booleans(), st.booleans(),
       st.integers(0, 120))
def test_prefix_ranges_match_model(entries, prefix, lo, hi, lo_open,
                                   hi_open, target):
    """Composite keys (p, v): range queries pin the prefix and constrain
    the last component — the shape every join-graph edge query uses."""
    tree = AggregateTree(1, value_of)
    model = []
    for p, v, value in entries:
        item = Item([value])
        node = tree.insert((p, v), item)
        model.append(((p, v), node.tie, item))
    interval = Interval(lo if lo >= 0 else None, hi if hi >= 0 else None,
                        lo_open, hi_open)
    rng = IndexRange((prefix,), interval)
    in_range = sorted(
        (key, tie, item) for key, tie, item in model
        if key[0] == prefix and interval.contains(key[1])
    )
    assert tree.range_sum(0, rng) == \
        sum(item.values[0] for *_, item in in_range)
    assert [n.tie for n in tree.iter_nodes(rng)] == \
        [tie for _, tie, __ in in_range]
    running = 0
    expected = None
    for key, tie, item in in_range:
        if running <= target < running + item.values[0]:
            expected = (item, running)
            break
        running += item.values[0]
    assert tree.select(0, target, rng) == expected


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_prefix_sum_matches_model(ops):
    tree = AggregateTree(1, value_of)
    model = []
    for op, key, value in ops:
        if op == "delete" and model:
            idx = (key + value) % len(model)
            _, node, _ = model.pop(idx)
            tree.delete(node)
        else:
            item = Item([value])
            node = tree.insert((key,), item)
            model.append((key, node, item))
    for key, node, item in model:
        expected = sum(
            i.values[0] for k, n, i in model
            if (k, n.tie) <= (key, node.tie)
        )
        assert tree.prefix_sum(0, node) == expected
