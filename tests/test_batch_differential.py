"""Cross-path differential: ``apply_batch`` ≡ serial per-op replay.

The batch-first hot path coalesces consecutive same-target inserts into
one graph registration (weight deltas propagated once per vertex and
direction, skip-sampling decisions drawn over merged delta views).  The
redesign's contract is that this is *exactly* serializable: for any op
sequence and any chunking into micro-batches, the maintained synopsis,
the raw sample multiset, AND the engine's RNG state are bit-identical to
applying the ops one at a time.  These tests enforce that contract for
every synopsis type, both engines, delete-heavy streams, and batches
that straddle a persistence checkpoint.
"""

import random
import shutil
import tempfile

import pytest

from repro import Database
from repro.core.config import MaintainerConfig
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.core.manager import SynopsisManager
from repro.core.stats_api import BatchResult, DeleteOp, InsertOp
from repro.core.synopsis import SynopsisSpec

from conftest import make_tables

SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0"

SPECS = {
    "fixed": SynopsisSpec.fixed_size(8),
    "replacement": SynopsisSpec.with_replacement(8),
    "bernoulli": SynopsisSpec.bernoulli(0.4),
}
ENGINES = ("sjoin-opt", "sjoin")


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
    return db


def make_maintainer(spec, engine, seed=11):
    return JoinSynopsisMaintainer(
        make_db(), SQL,
        MaintainerConfig(spec=spec, engine=engine, seed=seed),
    )


def build_ops(seed, n, delete_prob):
    """A reproducible op script.  Delete targets are drawn from the TIDs
    the script itself will have inserted (TIDs are deterministic:
    sequential per table), so the same script replays on any path."""
    rng = random.Random(seed)
    ops = []
    live = {"r": [], "s": [], "t": []}
    next_tid = {"r": 0, "s": 0, "t": 0}
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        if live[alias] and rng.random() < delete_prob:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            ops.append(DeleteOp(alias, tid))
        else:
            ops.append(InsertOp(
                alias, (rng.randrange(5), rng.randrange(5))))
            live[alias].append(next_tid[alias])
            next_tid[alias] += 1
    return ops


def chunk(ops, size):
    return [ops[i:i + size] for i in range(0, len(ops), size)]


def state_of(maintainer):
    return (
        maintainer.total_results(),
        maintainer.engine.raw_samples(),
        maintainer.synopsis(),
        maintainer.engine.rng.getstate(),
    )


# ----------------------------------------------------------------------
# maintainer level: every synopsis type x both engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("spec_name", sorted(SPECS))
@pytest.mark.parametrize("delete_prob,seed", [
    (0.0, 101), (0.3, 202), (0.7, 303),
], ids=["insert-only", "mixed", "delete-heavy"])
def test_apply_batch_bit_identical_to_serial(engine, spec_name,
                                             delete_prob, seed):
    spec = SPECS[spec_name]
    ops = build_ops(seed, 240, delete_prob)

    serial = make_maintainer(spec, engine)
    for op in ops:
        serial.apply_batch([op])

    for size in (4, 16, 64, 240):
        batched = make_maintainer(spec, engine)
        for piece in chunk(ops, size):
            result = batched.apply_batch(piece)
            assert isinstance(result, BatchResult)
            assert len(result.outcomes) == len(piece)
        batched.engine.graph.check_invariants()
        assert state_of(batched) == state_of(serial), \
            f"batch size {size} diverged from serial replay"


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_tids_match_serial(engine):
    """Per-op outcomes (TIDs, rejections) agree between the paths."""
    ops = build_ops(7, 120, 0.25)
    serial = make_maintainer(SPECS["fixed"], engine)
    serial_tids = [serial.apply_batch([op]).tids[0] for op in ops]
    batched = make_maintainer(SPECS["fixed"], engine)
    batched_tids = list(batched.apply_batch(ops).tids)
    assert batched_tids == serial_tids


def test_single_op_batches_equal_legacy_apply():
    """apply() is a strict wrapper: same tids, same synopsis."""
    ops = build_ops(5, 100, 0.2)
    a = make_maintainer(SPECS["fixed"], "sjoin-opt")
    b = make_maintainer(SPECS["fixed"], "sjoin-opt")
    tids_a = list(a.apply(ops).tids)
    tids_b = list(b.apply_batch(ops).tids)
    assert tids_a == tids_b
    assert state_of(a) == state_of(b)


# ----------------------------------------------------------------------
# manager level: fan-out batching (incl. duplicated aliases)
# ----------------------------------------------------------------------
MANAGER_SQL_PLAIN = "SELECT * FROM r, s WHERE r.c0 = s.c0"
MANAGER_SQL_SELF = (
    "SELECT * FROM r AS r1, r AS r2, s "
    "WHERE r1.c0 = s.c0 AND r2.c1 = s.c1"
)


def build_table_ops(seed, n, delete_prob):
    rng = random.Random(seed)
    ops = []
    live = {"r": [], "s": []}
    next_tid = {"r": 0, "s": 0}
    for _ in range(n):
        table = rng.choice(["r", "s"])
        if live[table] and rng.random() < delete_prob:
            tid = live[table].pop(rng.randrange(len(live[table])))
            ops.append(DeleteOp(table, tid))
        else:
            ops.append(InsertOp(
                table, (rng.randrange(4), rng.randrange(4))))
            live[table].append(next_tid[table])
            next_tid[table] += 1
    return ops


def make_manager(seed=3):
    manager = SynopsisManager(make_db(), MaintainerConfig(seed=seed))
    manager.register("plain", MANAGER_SQL_PLAIN, MaintainerConfig(
        spec=SynopsisSpec.fixed_size(6)))
    # r appears twice: this query's notifications must stay in the
    # serial per-row alias interleaving even inside a batched run
    manager.register("self", MANAGER_SQL_SELF, MaintainerConfig(
        spec=SynopsisSpec.fixed_size(6)))
    return manager


def manager_state(manager):
    return {
        name: (
            manager.total_results(name),
            manager.maintainer(name).engine.raw_samples(),
            manager.synopsis(name),
            manager.maintainer(name).engine.rng.getstate(),
        )
        for name in manager.names()
    }


@pytest.mark.parametrize("delete_prob,seed", [(0.0, 41), (0.4, 42)],
                         ids=["insert-only", "mixed"])
def test_manager_apply_batch_bit_identical(delete_prob, seed):
    ops = build_table_ops(seed, 180, delete_prob)
    serial = make_manager()
    for op in ops:
        serial.apply_batch([op])
    for size in (8, 64, 180):
        batched = make_manager()
        for piece in chunk(ops, size):
            batched.apply_batch(piece)
        assert manager_state(batched) == manager_state(serial), \
            f"manager batch size {size} diverged"


# ----------------------------------------------------------------------
# persistence: batches straddling a checkpoint
# ----------------------------------------------------------------------
def test_checkpoint_straddling_batches_recover_identically():
    """A WAL with whole-batch entries before AND after a checkpoint
    recovers to the same state as the uninterrupted run."""
    from repro.persist.runtime import PersistentMaintainer

    ops = build_ops(13, 200, 0.3)
    pieces = chunk(ops, 16)
    directory = tempfile.mkdtemp(prefix="repro-batch-ckpt-")
    try:
        pm = PersistentMaintainer(
            make_maintainer(SPECS["fixed"], "sjoin-opt"), directory)
        for i, piece in enumerate(pieces):
            pm.apply_batch(piece)
            if i == len(pieces) // 2:
                pm.checkpoint()  # WAL tail starts mid-stream
        expected = state_of(pm.maintainer)
        pm.abandon()  # crash simulation: no clean close
        recovered = PersistentMaintainer.recover(directory)
        assert state_of(recovered.maintainer) == expected
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# ----------------------------------------------------------------------
# run-boundary edges, through the service ingest path
# ----------------------------------------------------------------------
def build_seed_inserts(n=36, seed=17):
    """Inserts only: the live-TID pool the edge batches delete from."""
    rng = random.Random(seed)
    ops = []
    next_tid = {"r": 0, "s": 0, "t": 0}
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        ops.append(InsertOp(alias, (rng.randrange(5), rng.randrange(5))))
        next_tid[alias] += 1
    return ops, next_tid


def edge_batches(next_tid):
    """Batches hitting every coalescing run boundary: the batch-native
    hot path merges consecutive same-target insert runs, so a delete in
    first / last / every position exercises run open, run close, and the
    degenerate no-run batch."""
    def tid(alias, k):
        return next_tid[alias] - 1 - k

    return {
        "delete-first": [
            DeleteOp("r", tid("r", 0)),
            InsertOp("r", (1, 1)), InsertOp("r", (2, 2)),
            InsertOp("s", (1, 2)),
        ],
        "delete-last": [
            InsertOp("s", (3, 1)), InsertOp("s", (3, 2)),
            InsertOp("t", (2, 0)),
            DeleteOp("s", tid("s", 0)),
        ],
        "delete-both-ends": [
            DeleteOp("t", tid("t", 0)),
            InsertOp("r", (0, 4)), InsertOp("r", (0, 3)),
            DeleteOp("r", tid("r", 1)),
        ],
        "all-delete": [
            DeleteOp("r", tid("r", 2)),
            DeleteOp("s", tid("s", 1)),
            DeleteOp("t", tid("t", 1)),
        ],
        "single-op-runs": [
            InsertOp("r", (4, 4)), DeleteOp("s", tid("s", 2)),
            InsertOp("s", (4, 0)), DeleteOp("t", tid("t", 2)),
            InsertOp("t", (4, 1)),
        ],
    }


def test_run_boundary_batches_via_service_match_serial():
    """Every edge batch applied through SynopsisService ingest is
    bit-identical to per-op serial replay on a bare maintainer, and
    each batch lands in exactly one published epoch."""
    from repro.service import ServiceConfig, SynopsisService

    seed_ops, next_tid = build_seed_inserts()
    batches = edge_batches(next_tid)

    serial = make_maintainer(SPECS["fixed"], "sjoin-opt")
    for op in seed_ops:
        serial.apply_batch([op])
    for _, batch in sorted(batches.items()):
        for op in batch:
            serial.apply_batch([op])

    target = make_maintainer(SPECS["fixed"], "sjoin-opt")
    service = SynopsisService(target, ServiceConfig())
    try:
        service.apply_batch(seed_ops)
        for name, batch in sorted(batches.items()):
            epoch_before = service.epoch
            result = service.apply_batch(batch)
            assert len(result.outcomes) == len(batch), name
            # the whole batch becomes visible as ONE epoch step — a
            # reader can never observe a strict prefix of it
            assert service.epoch == epoch_before + 1, name
        # reads served from the view agree with the engine state
        assert service.synopsis() == [tuple(r) for r in
                                      target.synopsis()]
        assert service.total_results() == target.total_results()
    finally:
        service.close()
    assert state_of(target) == state_of(serial)


@pytest.mark.parametrize("engine", ENGINES)
def test_run_boundary_batches_direct_apply_match_serial(engine):
    """The same edge batches, straight through maintainer.apply_batch
    (no service): both engines, outcome-for-outcome."""
    seed_ops, next_tid = build_seed_inserts()
    batches = edge_batches(next_tid)

    serial = make_maintainer(SPECS["fixed"], engine)
    batched = make_maintainer(SPECS["fixed"], engine)
    for op in seed_ops:
        serial.apply_batch([op])
    batched.apply_batch(seed_ops)
    assert state_of(batched) == state_of(serial)

    for name, batch in sorted(batches.items()):
        serial_tids = [serial.apply_batch([op]).tids[0] for op in batch]
        batched_result = batched.apply_batch(batch)
        assert list(batched_result.tids) == serial_tids, name
        batched.engine.graph.check_invariants()
        assert state_of(batched) == state_of(serial), \
            f"edge batch {name!r} diverged from serial replay"


def test_all_delete_batch_drains_to_empty():
    """An all-delete batch that empties every table leaves a coherent
    zero state (total 0, empty synopsis) on both paths."""
    from repro.service import ServiceConfig, SynopsisService

    inserts = [InsertOp("r", (1, 1)), InsertOp("s", (1, 1)),
               InsertOp("t", (1, 1))]
    deletes = [DeleteOp("r", 0), DeleteOp("s", 0), DeleteOp("t", 0)]

    serial = make_maintainer(SPECS["fixed"], "sjoin-opt")
    for op in inserts + deletes:
        serial.apply_batch([op])

    target = make_maintainer(SPECS["fixed"], "sjoin-opt")
    service = SynopsisService(target, ServiceConfig())
    try:
        service.apply_batch(inserts)
        assert service.total_results() == 1
        service.apply_batch(deletes)
        assert service.total_results() == 0
        assert service.synopsis() == []
    finally:
        service.close()
    assert state_of(target) == state_of(serial)
    assert target.total_results() == 0
