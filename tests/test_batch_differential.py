"""Cross-path differential: ``apply_batch`` ≡ serial per-op replay.

The batch-first hot path coalesces consecutive same-target inserts into
one graph registration (weight deltas propagated once per vertex and
direction, skip-sampling decisions drawn over merged delta views).  The
redesign's contract is that this is *exactly* serializable: for any op
sequence and any chunking into micro-batches, the maintained synopsis,
the raw sample multiset, AND the engine's RNG state are bit-identical to
applying the ops one at a time.  These tests enforce that contract for
every synopsis type, both engines, delete-heavy streams, and batches
that straddle a persistence checkpoint.
"""

import random
import shutil
import tempfile

import pytest

from repro import Column, Database, TableSchema
from repro.core.config import MaintainerConfig
from repro.core.maintainer import JoinSynopsisMaintainer
from repro.core.manager import SynopsisManager
from repro.core.stats_api import BatchResult, DeleteOp, InsertOp
from repro.core.synopsis import SynopsisSpec

from conftest import make_tables

SQL = "SELECT * FROM r, s, t WHERE r.c0 = s.c0 AND s.c1 = t.c0"

SPECS = {
    "fixed": SynopsisSpec.fixed_size(8),
    "replacement": SynopsisSpec.with_replacement(8),
    "bernoulli": SynopsisSpec.bernoulli(0.4),
}
ENGINES = ("sjoin-opt", "sjoin")


def make_db():
    db = Database()
    make_tables(db, [("r", 2), ("s", 2), ("t", 2)])
    return db


def make_maintainer(spec, engine, seed=11):
    return JoinSynopsisMaintainer(
        make_db(), SQL,
        MaintainerConfig(spec=spec, engine=engine, seed=seed),
    )


def build_ops(seed, n, delete_prob):
    """A reproducible op script.  Delete targets are drawn from the TIDs
    the script itself will have inserted (TIDs are deterministic:
    sequential per table), so the same script replays on any path."""
    rng = random.Random(seed)
    ops = []
    live = {"r": [], "s": [], "t": []}
    next_tid = {"r": 0, "s": 0, "t": 0}
    for _ in range(n):
        alias = rng.choice(["r", "s", "t"])
        if live[alias] and rng.random() < delete_prob:
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            ops.append(DeleteOp(alias, tid))
        else:
            ops.append(InsertOp(
                alias, (rng.randrange(5), rng.randrange(5))))
            live[alias].append(next_tid[alias])
            next_tid[alias] += 1
    return ops


def chunk(ops, size):
    return [ops[i:i + size] for i in range(0, len(ops), size)]


def state_of(maintainer):
    return (
        maintainer.total_results(),
        maintainer.engine.raw_samples(),
        maintainer.synopsis(),
        maintainer.engine.rng.getstate(),
    )


# ----------------------------------------------------------------------
# maintainer level: every synopsis type x both engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("spec_name", sorted(SPECS))
@pytest.mark.parametrize("delete_prob,seed", [
    (0.0, 101), (0.3, 202), (0.7, 303),
], ids=["insert-only", "mixed", "delete-heavy"])
def test_apply_batch_bit_identical_to_serial(engine, spec_name,
                                             delete_prob, seed):
    spec = SPECS[spec_name]
    ops = build_ops(seed, 240, delete_prob)

    serial = make_maintainer(spec, engine)
    for op in ops:
        serial.apply_batch([op])

    for size in (4, 16, 64, 240):
        batched = make_maintainer(spec, engine)
        for piece in chunk(ops, size):
            result = batched.apply_batch(piece)
            assert isinstance(result, BatchResult)
            assert len(result.outcomes) == len(piece)
        batched.engine.graph.check_invariants()
        assert state_of(batched) == state_of(serial), \
            f"batch size {size} diverged from serial replay"


@pytest.mark.parametrize("engine", ENGINES)
def test_batch_tids_match_serial(engine):
    """Per-op outcomes (TIDs, rejections) agree between the paths."""
    ops = build_ops(7, 120, 0.25)
    serial = make_maintainer(SPECS["fixed"], engine)
    serial_tids = [serial.apply_batch([op]).tids[0] for op in ops]
    batched = make_maintainer(SPECS["fixed"], engine)
    batched_tids = list(batched.apply_batch(ops).tids)
    assert batched_tids == serial_tids


def test_single_op_batches_equal_legacy_apply():
    """apply() is a strict wrapper: same tids, same synopsis."""
    ops = build_ops(5, 100, 0.2)
    a = make_maintainer(SPECS["fixed"], "sjoin-opt")
    b = make_maintainer(SPECS["fixed"], "sjoin-opt")
    tids_a = list(a.apply(ops).tids)
    tids_b = list(b.apply_batch(ops).tids)
    assert tids_a == tids_b
    assert state_of(a) == state_of(b)


# ----------------------------------------------------------------------
# manager level: fan-out batching (incl. duplicated aliases)
# ----------------------------------------------------------------------
MANAGER_SQL_PLAIN = "SELECT * FROM r, s WHERE r.c0 = s.c0"
MANAGER_SQL_SELF = (
    "SELECT * FROM r AS r1, r AS r2, s "
    "WHERE r1.c0 = s.c0 AND r2.c1 = s.c1"
)


def build_table_ops(seed, n, delete_prob):
    rng = random.Random(seed)
    ops = []
    live = {"r": [], "s": []}
    next_tid = {"r": 0, "s": 0}
    for _ in range(n):
        table = rng.choice(["r", "s"])
        if live[table] and rng.random() < delete_prob:
            tid = live[table].pop(rng.randrange(len(live[table])))
            ops.append(DeleteOp(table, tid))
        else:
            ops.append(InsertOp(
                table, (rng.randrange(4), rng.randrange(4))))
            live[table].append(next_tid[table])
            next_tid[table] += 1
    return ops


def make_manager(seed=3):
    manager = SynopsisManager(make_db(), MaintainerConfig(seed=seed))
    manager.register("plain", MANAGER_SQL_PLAIN, MaintainerConfig(
        spec=SynopsisSpec.fixed_size(6)))
    # r appears twice: this query's notifications must stay in the
    # serial per-row alias interleaving even inside a batched run
    manager.register("self", MANAGER_SQL_SELF, MaintainerConfig(
        spec=SynopsisSpec.fixed_size(6)))
    return manager


def manager_state(manager):
    return {
        name: (
            manager.total_results(name),
            manager.maintainer(name).engine.raw_samples(),
            manager.synopsis(name),
            manager.maintainer(name).engine.rng.getstate(),
        )
        for name in manager.names()
    }


@pytest.mark.parametrize("delete_prob,seed", [(0.0, 41), (0.4, 42)],
                         ids=["insert-only", "mixed"])
def test_manager_apply_batch_bit_identical(delete_prob, seed):
    ops = build_table_ops(seed, 180, delete_prob)
    serial = make_manager()
    for op in ops:
        serial.apply_batch([op])
    for size in (8, 64, 180):
        batched = make_manager()
        for piece in chunk(ops, size):
            batched.apply_batch(piece)
        assert manager_state(batched) == manager_state(serial), \
            f"manager batch size {size} diverged"


# ----------------------------------------------------------------------
# persistence: batches straddling a checkpoint
# ----------------------------------------------------------------------
def test_checkpoint_straddling_batches_recover_identically():
    """A WAL with whole-batch entries before AND after a checkpoint
    recovers to the same state as the uninterrupted run."""
    from repro.persist.runtime import PersistentMaintainer

    ops = build_ops(13, 200, 0.3)
    pieces = chunk(ops, 16)
    directory = tempfile.mkdtemp(prefix="repro-batch-ckpt-")
    try:
        pm = PersistentMaintainer(
            make_maintainer(SPECS["fixed"], "sjoin-opt"), directory)
        for i, piece in enumerate(pieces):
            pm.apply_batch(piece)
            if i == len(pieces) // 2:
                pm.checkpoint()  # WAL tail starts mid-stream
        expected = state_of(pm.maintainer)
        pm.abandon()  # crash simulation: no clean close
        recovered = PersistentMaintainer.recover(directory)
        assert state_of(recovered.maintainer) == expected
        recovered.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
