"""End-to-end AQP over HTTP: register by SQL, ingest, estimate.

The ISSUE's acceptance demo: ``POST /query`` with a 3-table FK-join
query provisions a synopsis; after >= 10k streamed ops the estimates
return COUNT and GROUP BY answers whose 95% CIs cover the brute-force
ground truth — on the leader and on a WAL-shipped follower replica.
Also pins the HTTP error mapping (parse errors are 400s with position
info, unknown queries are 404s, follower writes are 403s).
"""

import json
import random
import urllib.error
import urllib.request

import pytest

from repro import (
    Column,
    Database,
    DeleteOp,
    ForeignKey,
    InsertOp,
    MaintainerConfig,
    SynopsisManager,
    SynopsisService,
    TableSchema,
)
from repro.persist import PersistentManager
from repro.replicate import FollowerService, WalShipper
from repro.service import ServiceHTTPServer
from repro.query.executor import JoinExecutor
from repro.query.parser import parse_query

FK_SQL = ("SELECT * FROM fact, dim, other "
          "WHERE fact.f_dim = dim.d_id AND dim.band = other.band")

N_OPS = 10_500
N_TRIALS = 3
SAMPLE_SIZE = 400


def fk_db():
    db = Database()
    db.create_table(TableSchema(
        "dim", [Column("d_id"), Column("band")], primary_key=("d_id",)))
    db.create_table(TableSchema(
        "fact", [Column("f_dim"), Column("val")],
        foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),)))
    db.create_table(TableSchema("other", [Column("band"), Column("z")]))
    return db


def get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def post(url, payload):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def http_error(callable_):
    with pytest.raises(urllib.error.HTTPError) as err:
        callable_()
    payload = json.loads(err.value.read())
    return err.value, payload


def stream_ops(service, rng, n=N_OPS):
    """Mixed inserts/deletes: dims first, then facts/others with
    occasional fact deletions."""
    dim_rows = [(d, d % 5) for d in range(80)]
    ops = [InsertOp("dim", row) for row in dim_rows]
    live_facts = []
    next_fact_tid = 0
    while len(ops) < n:
        roll = rng.random()
        if roll < 0.05 and live_facts:
            tid = live_facts.pop(rng.randrange(len(live_facts)))
            ops.append(DeleteOp("fact", tid))
        elif roll < 0.60:
            ops.append(InsertOp(
                "fact", (rng.randrange(80), rng.randrange(10))))
            live_facts.append(next_fact_tid)
            next_fact_tid += 1
        else:
            ops.append(InsertOp(
                "other", (rng.randrange(5), rng.randrange(10))))
    total = 0
    for start in range(0, len(ops), 500):
        result = service.apply_batch(ops[start:start + 500])
        total += result.inserted + result.deleted
    return len(ops)


def ground_truth(db):
    """Brute-force per-band counts of results with fact.val <= 4."""
    query = parse_query(FK_SQL, db)
    fact, dim = db.table("fact"), db.table("dim")
    per_band = {}
    total = 0
    for f_tid, d_tid, _ in JoinExecutor(db, query).results():
        if fact.peek(f_tid)[1] <= 4:
            total += 1
            band = dim.peek(d_tid)[1]
            per_band[band] = per_band.get(band, 0) + 1
    return total, per_band


WHERE = [{"column": "fact.val", "op": "<=", "value": 4}]


def coverage_checks(base, truth_total, truth_bands):
    """Yield (covered, label) for every CI the demo checks at ``base``."""
    for trial in range(N_TRIALS):
        name = f"stars{trial}"
        status, count = post(base + f"/query/{name}/estimate",
                             {"agg": "count", "where": WHERE})
        assert status == 200
        assert count["ci"] is not None
        lo, hi = count["ci"]
        yield lo <= truth_total <= hi, f"{name} count"
        status, grouped = post(
            base + f"/query/{name}/estimate",
            {"agg": "count", "where": WHERE, "group_by": "dim.band"})
        assert status == 200
        assert grouped["group_by"] == "dim.band"
        for g in grouped["groups"]:
            assert g["ci"] is not None
            lo, hi = g["ci"]
            truth = truth_bands.get(g["key"], 0)
            yield lo <= truth <= hi, f"{name} band={g['key']}"


@pytest.fixture(scope="module")
def leader(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("aqp-e2e")
    db = fk_db()
    pm = PersistentManager(
        SynopsisManager(db, MaintainerConfig(seed=99)),
        str(tmp_path / "leader"))
    service = SynopsisService(pm)
    server = ServiceHTTPServer(service, port=0).start()
    host, port = server.address
    base = f"http://{host}:{port}"
    # register the demo queries over HTTP, then stream the workload
    for trial in range(N_TRIALS):
        status, body = post(base + "/query", {
            "sql": FK_SQL, "name": f"stars{trial}",
            "size": SAMPLE_SIZE, "seed": 1000 + trial})
        assert status == 200
        assert body["name"] == f"stars{trial}"
        assert body["family"] == "uniform"
    streamed = stream_ops(service, random.Random(42))
    assert streamed >= 10_000
    yield db, pm, service, base, str(tmp_path)
    server.stop()
    service.close()
    pm.close()


class TestLeaderE2E:
    def test_register_provisions_synopsis(self, leader):
        db, pm, service, base, _ = leader
        status, body = get(base + "/queries")
        names = [q["name"] for q in body["queries"]]
        assert names == [f"stars{t}" for t in range(N_TRIALS)]
        for q in body["queries"]:
            assert q["sql"] == FK_SQL
            assert 0 < q["sample_size"] <= SAMPLE_SIZE
            assert q["total_results"] > 0

    def test_count_and_groupby_cis_cover_truth(self, leader):
        db, pm, service, base, _ = leader
        truth_total, truth_bands = ground_truth(db)
        assert truth_total > 0 and len(truth_bands) == 5
        checks = list(coverage_checks(base, truth_total, truth_bands))
        covered = sum(1 for ok, _ in checks if ok)
        missed = [label for ok, label in checks if not ok]
        assert covered >= 0.9 * len(checks), \
            f"CIs missed truth: {missed} ({covered}/{len(checks)})"

    def test_estimates_are_epoch_stamped(self, leader):
        db, pm, service, base, _ = leader
        status, body = post(base + "/query/stars0/estimate", {})
        assert status == 200
        assert body["epoch"] == service.epoch
        assert body["agg"] == "count"
        assert body["family"] == "uniform"


class TestFollowerE2E:
    @pytest.fixture(scope="class")
    def follower(self, leader):
        db, pm, service, base, tmp = leader
        pm.checkpoint()
        shipper = WalShipper(tmp + "/leader", tmp + "/ship")
        shipper.ship_once()
        replica = FollowerService(tmp + "/ship", leader_url=base)
        assert replica.bootstrapped
        server = ServiceHTTPServer(replica, port=0).start()
        host, port = server.address
        yield replica, f"http://{host}:{port}"
        server.stop()
        replica.close()

    def test_leader_registrations_replay_onto_replica(self, leader,
                                                      follower):
        replica, fbase = follower
        status, body = get(fbase + "/queries")
        names = [q["name"] for q in body["queries"]]
        assert names == [f"stars{t}" for t in range(N_TRIALS)]

    def test_follower_estimates_match_leader(self, leader, follower):
        db, pm, service, base, _ = leader
        replica, fbase = follower
        for payload in ({"agg": "count", "where": WHERE},
                        {"agg": "count", "group_by": "dim.band"},
                        {"agg": "sum", "column": "fact.val"}):
            _, on_leader = post(base + "/query/stars0/estimate", payload)
            _, on_replica = post(fbase + "/query/stars0/estimate",
                                 payload)
            # same sample replayed from the WAL: identical answers
            on_leader.pop("epoch"), on_replica.pop("epoch")
            assert on_leader == on_replica

    def test_follower_cis_cover_truth(self, leader, follower):
        db, pm, service, base, _ = leader
        replica, fbase = follower
        truth_total, truth_bands = ground_truth(db)
        checks = list(coverage_checks(fbase, truth_total, truth_bands))
        covered = sum(1 for ok, _ in checks if ok)
        assert covered >= 0.9 * len(checks)

    def test_follower_register_403_with_leader_location(self, leader,
                                                        follower):
        db, pm, service, base, _ = leader
        replica, fbase = follower
        err, payload = http_error(lambda: post(fbase + "/query", {
            "sql": FK_SQL, "name": "nope"}))
        assert err.code == 403
        assert payload["leader_url"] == base
        assert err.headers["Location"] == base


class TestErrorMapping:
    def test_parse_error_is_400_with_position(self, leader):
        db, pm, service, base, _ = leader
        err, payload = http_error(lambda: post(base + "/query", {
            "sql": "SELECT * FROM fact, dim WHERE ???"}))
        assert err.code == 400
        assert payload["position"] == 30
        assert payload["token"] == "?"
        assert "position 30" in payload["error"]

    def test_unknown_table_is_400(self, leader):
        db, pm, service, base, _ = leader
        err, payload = http_error(lambda: post(base + "/query", {
            "sql": "SELECT * FROM nope, dim WHERE nope.a = dim.d_id"}))
        assert err.code == 400
        assert "nope" in payload["error"]

    def test_bad_weight_column_is_400(self, leader):
        db, pm, service, base, _ = leader
        err, payload = http_error(lambda: post(base + "/query", {
            "sql": FK_SQL, "weight_column": "fact.nope"}))
        assert err.code == 400
        assert "fact.nope" in payload["error"]

    def test_unknown_query_is_404(self, leader):
        db, pm, service, base, _ = leader
        err, payload = http_error(
            lambda: post(base + "/query/ghost/estimate", {}))
        assert err.code == 404
        assert "ghost" in payload["error"]

    def test_duplicate_name_is_409(self, leader):
        db, pm, service, base, _ = leader
        err, payload = http_error(lambda: post(base + "/query", {
            "sql": FK_SQL, "name": "stars0"}))
        assert err.code == 409
        assert "already registered" in payload["error"]

    def test_bad_aggregate_is_400(self, leader):
        db, pm, service, base, _ = leader
        err, payload = http_error(
            lambda: post(base + "/query/stars0/estimate",
                         {"agg": "median"}))
        assert err.code == 400


class TestCLI:
    def test_query_subcommand_round_trip(self, leader, capsys):
        from repro.cli import main

        db, pm, service, base, _ = leader
        main(["query", "list", "--url", base])
        listed = json.loads(capsys.readouterr().out)
        assert [q["name"] for q in listed["queries"]][:1] == ["stars0"]
        main(["query", "estimate", "stars0", "--url", base,
              "--agg", "count", "--where", json.dumps(WHERE)])
        answer = json.loads(capsys.readouterr().out)
        assert answer["agg"] == "count"
        assert answer["ci"] is not None

    def test_query_register_and_parse_error_exit(self, leader, capsys):
        from repro.cli import main

        db, pm, service, base, _ = leader
        main(["query", "register", "--url", base,
              "--sql", FK_SQL, "--name", "cli-q", "--size", "64"])
        body = json.loads(capsys.readouterr().out)
        assert body["name"] == "cli-q"
        with pytest.raises(SystemExit):
            main(["query", "register", "--url", base, "--sql", "???"])
