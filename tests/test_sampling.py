"""Sampling substrate tests: alias structure, skip-number distributions.

Skip generators are validated two ways: (1) expectations / support checks,
(2) chi-square goodness of fit against the exact target distribution or
against a naive per-record reference implementation.
"""

import math
import random
from collections import Counter

import pytest

from repro.sampling.alias import WalkerAlias
from repro.sampling.bernoulli import GeometricSkipSampler
from repro.sampling.reservoir import VitterSkipSampler, naive_reservoir_skip
from repro.sampling.with_replacement import MultiReservoirSkips

from conftest import chi_square_threshold, chi_square_uniform


class TestWalkerAlias:
    def test_validation(self):
        with pytest.raises(ValueError):
            WalkerAlias([])
        with pytest.raises(ValueError):
            WalkerAlias([0.0, 0.0])
        with pytest.raises(ValueError):
            WalkerAlias([1.0, -1.0])

    def test_single_outcome(self):
        alias = WalkerAlias([3.0])
        rng = random.Random(1)
        assert all(alias.sample(rng) == 0 for _ in range(50))

    def test_zero_weight_outcomes_never_drawn(self):
        alias = WalkerAlias([1.0, 0.0, 1.0])
        rng = random.Random(2)
        draws = {alias.sample(rng) for _ in range(500)}
        assert 1 not in draws

    def test_distribution_chi_square(self):
        weights = [1.0, 2.0, 3.0, 4.0]
        alias = WalkerAlias(weights)
        rng = random.Random(3)
        n = 40000
        counts = Counter(alias.sample(rng) for _ in range(n))
        total_w = sum(weights)
        stat = sum(
            (counts[i] - n * w / total_w) ** 2 / (n * w / total_w)
            for i, w in enumerate(weights)
        )
        assert stat < chi_square_threshold(len(weights) - 1)


class TestVitterSkips:
    def test_requires_t_at_least_m(self):
        sampler = VitterSkipSampler(5, random.Random(0))
        with pytest.raises(ValueError):
            sampler.skip(4)

    def test_m_must_be_positive(self):
        with pytest.raises(ValueError):
            VitterSkipSampler(0, random.Random(0))

    def test_skips_non_negative(self):
        sampler = VitterSkipSampler(3, random.Random(1))
        t = 3
        for _ in range(200):
            s = sampler.skip(t)
            assert s >= 0
            t += s + 1

    @pytest.mark.parametrize("m,t", [(2, 10), (5, 40), (3, 200)])
    def test_matches_naive_distribution(self, m, t):
        """Chi-square: Vitter skips vs the exact P(S = s)."""
        rng = random.Random(42)
        sampler = VitterSkipSampler(m, rng)
        n = 12000
        draws = Counter(sampler.skip(t) for _ in range(n))
        # exact pmf: P(S >= s) = prod_{i=1..s} (t+i-m)/(t+i)
        cutoff = max(draws) + 1
        surv = [1.0]
        for s in range(1, cutoff + 1):
            surv.append(surv[-1] * (t + s - m) / (t + s))
        stat = 0.0
        buckets = 0
        tail_expected = n
        tail_observed = n
        for s in range(cutoff):
            expected = n * (surv[s] - surv[s + 1])
            if expected < 8:
                break
            stat += (draws.get(s, 0) - expected) ** 2 / expected
            tail_expected -= expected
            tail_observed -= draws.get(s, 0)
            buckets += 1
        if tail_expected > 8:
            stat += (tail_observed - tail_expected) ** 2 / tail_expected
            buckets += 1
        assert stat < chi_square_threshold(max(buckets - 1, 1))

    def test_algorithm_z_region_agrees_with_naive_mean(self):
        """Deep in the Z region, the mean skip is ~ (t - m + 1)/(m - 1)."""
        m, t = 4, 1000
        rng = random.Random(9)
        sampler = VitterSkipSampler(m, rng)
        n = 8000
        mean = sum(sampler.skip(t) for _ in range(n)) / n
        expected = (t + 1 - m) / (m - 1)
        assert abs(mean - expected) / expected < 0.1

    def test_naive_reference_behaves(self):
        rng = random.Random(5)
        draws = [naive_reservoir_skip(2, 10, rng) for _ in range(2000)]
        assert min(draws) >= 0
        # P(S = 0) = m/(t+1) = 2/11
        frac0 = sum(1 for d in draws if d == 0) / len(draws)
        assert abs(frac0 - 2 / 11) < 0.03


class TestMultiReservoirSkips:
    def test_all_slots_select_first_record(self):
        skips = MultiReservoirSkips(4, random.Random(0))
        assert skips.skip_from(0) == 0
        slots = skips.pop_slots_at(0)
        assert sorted(slots) == [0, 1, 2, 3]

    def test_positions_move_forward(self):
        rng = random.Random(1)
        skips = MultiReservoirSkips(3, rng)
        skips.pop_slots_at(0)
        assert skips.next_selection() >= 1

    def test_rearm_all_redraws_at_new_total(self):
        """After a deletion shrinks J, every pending position must be a
        fresh draw at the new J: P(next selection == j) = 1/(j+1)."""
        trials = 6000
        hits = 0
        for trial in range(trials):
            skips = MultiReservoirSkips(1, random.Random(trial))
            skips.pop_slots_at(0)  # position now drawn for large-ish J
            skips.rearm_all(5)
            if skips.next_selection() == 5:
                hits += 1
        # P(select the very next record) = 1/6; 3-sigma ≈ 0.0144
        assert abs(hits / trials - 1 / 6) < 0.016

    def test_rearm_all_at_zero_selects_first_record(self):
        skips = MultiReservoirSkips(3, random.Random(4))
        skips.pop_slots_at(0)
        skips.rearm_all(0)
        assert skips.next_selection() == 0
        assert sorted(skips.pop_slots_at(0)) == [0, 1, 2]

    def test_single_slot_selection_distribution(self):
        """A 1-slot with-replacement synopsis over N records keeps each
        record with probability 1/N — check by simulation."""
        n_records = 12
        trials = 6000
        counts = Counter()
        for trial in range(trials):
            rng = random.Random(trial)
            skips = MultiReservoirSkips(1, rng)
            kept = None
            j = 0
            for record in range(n_records):
                if skips.next_selection() == j:
                    kept = record
                    skips.pop_slots_at(j)
                j += 1
            counts[kept] += 1
        stat = chi_square_uniform([counts[i] for i in range(n_records)])
        assert stat < chi_square_threshold(n_records - 1)

    def test_m_must_be_positive(self):
        with pytest.raises(ValueError):
            MultiReservoirSkips(0, random.Random(0))


class TestGeometricSkips:
    def test_p_validation(self):
        with pytest.raises(ValueError):
            GeometricSkipSampler(0.0, random.Random(0))
        with pytest.raises(ValueError):
            GeometricSkipSampler(1.5, random.Random(0))

    def test_p_one_always_selects(self):
        sampler = GeometricSkipSampler(1.0, random.Random(0))
        assert all(sampler.skip() == 0 for _ in range(20))

    @pytest.mark.parametrize("p", [0.5, 0.1, 0.02])
    def test_alias_draw_matches_geometric(self, p):
        rng = random.Random(7)
        sampler = GeometricSkipSampler(p, rng)
        n = 20000
        draws = Counter(sampler.skip() for _ in range(n))
        stat = 0.0
        buckets = 0
        covered_obs = 0
        covered_exp = 0.0
        s = 0
        while True:
            expected = n * (1 - p) ** s * p
            if expected < 8:
                break
            stat += (draws.get(s, 0) - expected) ** 2 / expected
            covered_obs += draws.get(s, 0)
            covered_exp += expected
            buckets += 1
            s += 1
        tail_exp = n - covered_exp
        if tail_exp > 8:
            stat += ((n - covered_obs) - tail_exp) ** 2 / tail_exp
            buckets += 1
        assert stat < chi_square_threshold(max(buckets - 1, 1))

    def test_inversion_reference_mean(self):
        p = 0.05
        sampler = GeometricSkipSampler(p, random.Random(3))
        n = 20000
        mean = sum(sampler.skip_by_inversion() for _ in range(n)) / n
        assert abs(mean - (1 - p) / p) / ((1 - p) / p) < 0.05
