"""Uniformity of SJoin-opt on an FK-collapsed multi-way query.

The plain-engine uniformity tests (test_uniformity.py) cover the sampling
machinery; this module checks that routing through combined nodes (FK
assembly, §6) preserves uniformity end-to-end, including deletions that
trigger purge + re-draw through the collapsed plan.
"""

import random
from collections import Counter

import pytest

from repro import (
    Column,
    Database,
    ForeignKey,
    JoinExecutor,
    SJoinEngine,
    SynopsisSpec,
    TableSchema,
    parse_query,
)

from conftest import chi_square_threshold, chi_square_uniform

SQL = ("SELECT * FROM fact, dim, other "
       "WHERE fact.f_dim = dim.d_id AND dim.band = other.band")


def build_db():
    db = Database()
    db.create_table(TableSchema(
        "dim", [Column("d_id"), Column("band")], primary_key=("d_id",)))
    db.create_table(TableSchema(
        "fact", [Column("f_dim"), Column("v")],
        foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),)))
    db.create_table(TableSchema("other", [Column("band")]))
    return db


def build_script():
    """Fixed workload: dims, facts, others, then a deletion wave."""
    rng = random.Random(77)
    script = []
    for d in range(6):
        script.append(("insert", "dim", (d, d % 3)))
    fact_tids = []
    other_tids = []
    next_tid = {"fact": 0, "other": 0}
    for i in range(30):
        script.append(("insert", "fact", (rng.randrange(6), i)))
        fact_tids.append(next_tid["fact"])
        next_tid["fact"] += 1
        if i % 2 == 0:
            script.append(("insert", "other", (rng.randrange(3),)))
            other_tids.append(next_tid["other"])
            next_tid["other"] += 1
    rng.shuffle(fact_tids)
    for tid in fact_tids[:12]:
        script.append(("delete", "fact", tid))
    rng.shuffle(other_tids)
    for tid in other_tids[:4]:
        script.append(("delete", "other", tid))
    return script


SCRIPT = build_script()


def run_once(seed, spec):
    db = build_db()
    query = parse_query(SQL, db)
    engine = SJoinEngine(db, query, spec, fk_optimize=True, seed=seed)
    for op, alias, payload in SCRIPT:
        if op == "insert":
            engine.insert(alias, payload)
        else:
            engine.delete(alias, payload)
    return db, engine


@pytest.fixture(scope="module")
def exact_results():
    db, engine = run_once(0, SynopsisSpec.fixed_size(1))
    return sorted(JoinExecutor(db, engine.query).results())


def test_workload_is_interesting(exact_results):
    # guard: the fixed script must leave a non-trivial result set
    assert 10 <= len(exact_results) <= 200


def test_fixed_size_uniform_through_fk_collapse(exact_results):
    m = 4
    trials = 500
    counts = Counter()
    for t in range(trials):
        _, engine = run_once(t, SynopsisSpec.fixed_size(m))
        results = engine.synopsis_results()
        assert len(results) == min(m, len(exact_results))
        assert set(results) <= set(exact_results)
        for r in results:
            counts[r] += 1
    stat = chi_square_uniform([counts[r] for r in exact_results])
    assert stat < chi_square_threshold(len(exact_results) - 1)


def test_with_replacement_uniform_through_fk_collapse(exact_results):
    trials = 500
    counts = Counter()
    for t in range(trials):
        _, engine = run_once(t, SynopsisSpec.with_replacement(3))
        for r in engine.synopsis_results():
            counts[r] += 1
    stat = chi_square_uniform([counts[r] for r in exact_results])
    assert stat < chi_square_threshold(len(exact_results) - 1)
