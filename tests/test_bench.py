"""Benchmark-harness tests: throughput runs, memory accounting, reports."""

from repro import (
    Column,
    Database,
    SJoinEngine,
    SymmetricJoinEngine,
    SynopsisSpec,
    TableSchema,
    parse_query,
)
from repro.bench.harness import run_stream
from repro.bench.memory import deep_size_bytes, engine_memory_bytes
from repro.bench.reporting import (
    format_ratio,
    format_series,
    format_table,
    human_bytes,
    throughput_series,
)
from repro.datagen.workload import DeleteOldest, Insert


def tiny_engine(cls=SJoinEngine, **kwargs):
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("b")]))
    db.create_table(TableSchema("s", [Column("a"), Column("b")]))
    query = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
    return cls(db, query, SynopsisSpec.fixed_size(5), seed=0, **kwargs)


def tiny_events(n=60):
    events = []
    for i in range(n):
        events.append(Insert("r", (i % 4, i)))
        events.append(Insert("s", (i % 4, i)))
        if i % 10 == 9:
            events.append(DeleteOldest("r", 2))
    return events


class TestRunStream:
    def test_run_completes_and_checkpoints(self):
        engine = tiny_engine()
        run = run_stream(engine, tiny_events(), workload="tiny",
                         checkpoint_every=20)
        assert not run.aborted
        assert run.operations == run.planned_operations
        assert run.checkpoints
        assert run.average_throughput > 0
        first = run.checkpoints[0]
        assert first.instant_throughput > 0
        assert first.total_results is not None
        assert 0 < first.progress <= 1

    def test_time_budget_aborts(self):
        engine = tiny_engine()
        run = run_stream(engine, tiny_events(500), workload="tiny",
                         checkpoint_every=10, time_budget=0.0)
        assert run.aborted
        assert run.operations < run.planned_operations

    def test_synopsis_requests_simulated(self):
        engine = tiny_engine()
        run = run_stream(engine, tiny_events(), checkpoint_every=50,
                         synopsis_every=25)
        assert run.operations > 0

    def test_summary_readable(self):
        engine = tiny_engine()
        run = run_stream(engine, tiny_events(), workload="tiny")
        line = run.summary()
        assert "tiny" in line and "ops" in line


class TestMemory:
    def test_deep_size_counts_shared_once(self):
        shared = list(range(100))
        a = {"x": shared}
        b = {"y": shared}
        both = deep_size_bytes(a, b)
        assert both < deep_size_bytes(a) + deep_size_bytes(b)

    def test_deep_size_handles_slots(self):
        from repro.graph.vertex import Vertex
        v = Vertex(0, (1, 2))
        v.ids.extend(range(10))
        assert deep_size_bytes(v) > 0

    def test_engine_memory_grows_with_data(self):
        engine = tiny_engine()
        empty = engine_memory_bytes(engine)
        for i in range(200):
            engine.insert("r", (i % 10, i))
            engine.insert("s", (i % 10, i))
        assert engine_memory_bytes(engine) > empty

    def test_sj_memory_measured_too(self):
        engine = tiny_engine(cls=SymmetricJoinEngine)
        for i in range(50):
            engine.insert("r", (i % 5, i))
        assert engine_memory_bytes(engine) > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ("name", "value"), [("a", 1), ("longer", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) == 1

    def test_format_series(self):
        text = format_series("fig", [0.0, 50.0], [100.0, 90.0])
        assert "fig" in text and "50.0" in text

    def test_format_ratio(self):
        assert format_ratio("x", 10, 2) == "x: 5.0x"
        assert "inf" in format_ratio("x", 10, 0)

    def test_human_bytes(self):
        assert human_bytes(512) == "512.0 B"
        assert human_bytes(2048) == "2.0 KB"
        assert human_bytes(3 * 1024**3) == "3.0 GB"

    def test_throughput_series_extraction(self):
        engine = tiny_engine()
        run = run_stream(engine, tiny_events(), checkpoint_every=20)
        series = throughput_series(run)
        assert len(series["progress"]) == len(series["throughput"])
        assert series["progress"] == sorted(series["progress"])
