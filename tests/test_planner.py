"""Planner tests: index layout, FK collapse, routes, result expansion."""

import pytest

from repro import (
    Column,
    Database,
    ForeignKey,
    PlanError,
    TableSchema,
    parse_query,
)
from repro.datagen.tpcds import setup_query
from repro.query.planner import plan_query


def simple_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("b")]))
    db.create_table(TableSchema("t", [Column("b"), Column("y")]))
    return db


def fk_db():
    """fact -> dim on a declared FK / PK pair."""
    db = Database()
    db.create_table(TableSchema(
        "dim", [Column("d_id"), Column("payload")], primary_key=("d_id",)
    ))
    db.create_table(TableSchema(
        "fact", [Column("f_dim"), Column("val")],
        foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),),
    ))
    db.create_table(TableSchema("other", [Column("payload"), Column("z")]))
    return db


class TestLayout:
    def test_unoptimized_nodes_are_range_tables(self):
        db = simple_db()
        q = parse_query(
            "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b", db
        )
        plan = plan_query(q, db)
        assert [n.alias for n in plan.nodes] == ["r", "s", "t"]
        assert all(not n.is_combined for n in plan.nodes)

    def test_one_index_per_directed_edge_plus_wfull(self):
        db = simple_db()
        q = parse_query(
            "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b", db
        )
        plan = plan_query(q, db)
        # 2 edges -> 4 directed indexes total (2n-2 with n=3)
        assert len(plan.indexes) == 4
        # each node's designated (first) index carries the w_full slot
        for node in plan.nodes:
            designated = plan.designated_index[node.idx]
            assert ("w_full", -1) in designated.slots
        # middle node s has 2 indexes, leaves 1 each
        assert len(plan.node_indexes[plan.node_idx("s")]) == 2
        assert len(plan.node_indexes[plan.node_idx("r")]) == 1

    def test_vertex_attrs_are_join_attrs(self):
        db = simple_db()
        q = parse_query(
            "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b", db
        )
        plan = plan_query(q, db)
        assert plan.node("s").vertex_attrs == ("a", "b")
        assert plan.node("r").vertex_attrs == ("a",)

    def test_single_table_plan(self):
        db = simple_db()
        plan = plan_query(parse_query("SELECT * FROM r", db), db)
        assert len(plan.indexes) == 1
        assert plan.indexes[0].slots == (("w_full", -1),)

    def test_expand_result_identity_without_collapse(self):
        db = simple_db()
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        plan = plan_query(q, db)
        assert plan.expand_result((3, 9)) == (3, 9)

    def test_slot_lookup_error(self):
        db = simple_db()
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        plan = plan_query(q, db)
        with pytest.raises(PlanError):
            plan.designated_index[0].slot_of("w_out", 42)


class TestFkCollapse:
    def test_fact_dim_collapses(self):
        db = fk_db()
        q = parse_query(
            "SELECT * FROM fact, dim, other "
            "WHERE fact.f_dim = dim.d_id AND dim.payload = other.payload",
            db,
        )
        plan = plan_query(q, db, fk_optimize=True)
        assert len(plan.nodes) == 2
        combined = plan.node("fact__dim")
        assert combined.is_combined
        assert [m.alias for m in combined.members] == ["fact", "dim"]
        assert combined.members[1].parent_alias == "fact"
        # routes
        assert plan.routes["fact"].kind == "anchor"
        assert plan.routes["dim"].kind == "member"
        assert plan.routes["other"].kind == "direct"

    def test_no_collapse_without_declared_fk(self):
        db = Database()
        db.create_table(TableSchema(
            "dim", [Column("d_id")], primary_key=("d_id",)))
        db.create_table(TableSchema("fact", [Column("f_dim")]))
        q = parse_query(
            "SELECT * FROM fact, dim WHERE fact.f_dim = dim.d_id", db
        )
        plan = plan_query(q, db, fk_optimize=True)
        assert len(plan.nodes) == 2

    def test_no_collapse_on_range_edge(self):
        db = fk_db()
        q = parse_query(
            "SELECT * FROM fact, dim WHERE fact.f_dim <= dim.d_id", db
        )
        plan = plan_query(q, db, fk_optimize=True)
        assert len(plan.nodes) == 2

    def test_combined_schema_prefixes_and_tids(self):
        db = fk_db()
        q = parse_query(
            "SELECT * FROM fact, dim, other "
            "WHERE fact.f_dim = dim.d_id AND dim.payload = other.payload",
            db,
        )
        plan = plan_query(q, db, fk_optimize=True)
        combined = plan.node("fact__dim")
        names = combined.schema.column_names
        assert names[:2] == ("__tid_fact", "__tid_dim")
        assert "fact__f_dim" in names and "dim__payload" in names
        # remapped edge attr
        assert combined.vertex_attrs == ("dim__payload",)

    def test_qy_collapse_shape(self):
        setup = setup_query("QY", seed=0)
        q = parse_query(setup.sql, setup.db)
        plan = plan_query(q, setup.db, fk_optimize=True)
        assert sorted(n.alias for n in plan.nodes) == \
            ["c2__d2", "ss__c1__d1"]
        big = plan.node("ss__c1__d1")
        assert [m.alias for m in big.members] == ["ss", "c1", "d1"]
        assert big.member("d1").parent_alias == "c1"

    def test_qx_collapse_shape(self):
        setup = setup_query("QX", seed=0)
        q = parse_query(setup.sql, setup.db)
        plan = plan_query(q, setup.db, fk_optimize=True)
        assert sorted(n.alias for n in plan.nodes) == \
            ["cs__d2", "sr__ss__d1"]
        big = plan.node("sr__ss__d1")
        # d1 hangs off ss, which hangs off the anchor sr
        assert big.member("ss").parent_alias == "sr"
        assert big.member("d1").parent_alias == "ss"

    def test_qz_collapse_shape(self):
        setup = setup_query("QZ", seed=0)
        q = parse_query(setup.sql, setup.db)
        plan = plan_query(q, setup.db, fk_optimize=True)
        assert sorted(n.alias for n in plan.nodes) == \
            ["c2__d2", "i2", "ss__c1__i1__d1"]

    def test_expansion_restores_original_order(self):
        setup = setup_query("QY", seed=0)
        q = parse_query(setup.sql, setup.db)
        plan = plan_query(q, setup.db, fk_optimize=True)
        # build one combined row manually
        big = plan.node("ss__c1__d1")
        row = (11, 22, 33) + (0,) * (len(big.schema.columns) - 3)
        tid = big.table.insert(row)
        small = plan.node("c2__d2")
        row2 = (44, 55) + (0,) * (len(small.schema.columns) - 2)
        tid2 = small.table.insert(row2)
        plan_result = [None, None]
        plan_result[big.idx] = tid
        plan_result[small.idx] = tid2
        # original aliases in declaration order: ss, c1, d1, d2, c2
        assert plan.expand_result(plan_result) == (11, 22, 33, 55, 44)
