"""SQL round-trip determinism and statistical CI coverage.

Two laws back docs/sql.md:

* **Round-trip**: rendering a generated :class:`JoinQuery` to SQL,
  re-parsing it and planning both must agree — same rendered SQL, same
  deterministic ``explain`` output, same exact join results.
* **Coverage**: a registered query's 95% CI for a filtered COUNT must
  cover the brute-force ground truth in >= 90% of seeded trials (the
  normal approximation plus ignoring the without-replacement
  correction makes the nominal level roughly hold).
"""

import random

import pytest

from repro import (
    Database,
    InsertOp,
    MaintainerConfig,
    QueryRegistry,
    SynopsisManager,
)
from repro.query.executor import JoinExecutor
from repro.query.explain import explain_plan
from repro.query.parser import parse_query
from repro.query.planner import plan_query

from conftest import random_query, random_row

SEEDS = range(20)


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_queries_round_trip(seed):
    rng = random.Random(1000 + seed)
    db, query = random_query(rng, num_tables=2 + seed % 3)
    sql = str(query)
    reparsed = parse_query(sql, db)
    assert str(reparsed) == sql
    # planning either object renders the identical explain text
    assert explain_plan(plan_query(query, db)) == \
        explain_plan(plan_query(reparsed, db))
    # and twice more for determinism of the rendering itself
    assert explain_plan(plan_query(reparsed, db)) == \
        explain_plan(plan_query(reparsed, db))
    # the re-parsed query joins identically
    for i, ncols in enumerate(
            len(db.table(rt.table_name).schema.columns)
            for rt in query.range_tables):
        for _ in range(12):
            db.table(query.range_tables[i].table_name).insert(
                random_row(rng, ncols))
    assert set(JoinExecutor(db, query).results()) == \
        set(JoinExecutor(db, reparsed).results())


def _coverage_trial(seed):
    """One seeded trial: does the 95% CI cover the exact count?"""
    rng = random.Random(seed)
    db = Database()
    from repro import Column, TableSchema
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    manager = SynopsisManager(db, MaintainerConfig(seed=seed))
    registry = QueryRegistry(manager)
    sql = "SELECT * FROM r, s WHERE r.a = s.a"
    q = registry.register(sql, "cov", size=80, seed=seed)
    ops = [InsertOp("r", (rng.randrange(12), rng.randrange(10)))
           for _ in range(150)]
    ops += [InsertOp("s", (rng.randrange(12), rng.randrange(10)))
            for _ in range(150)]
    manager.apply_batch(ops)
    r_table = db.table("r")
    truth = sum(
        1 for r_tid, _ in JoinExecutor(db, parse_query(sql, db)).results()
        if r_table.peek(r_tid)[1] <= 4)
    payload = q.estimate("count", where=[
        {"column": "r.x", "op": "<=", "value": 4}])
    assert payload["ci"] is not None
    lo, hi = payload["ci"]
    return lo <= truth <= hi


def test_count_ci_covers_ground_truth_across_seeds():
    covered = sum(_coverage_trial(seed) for seed in SEEDS)
    assert covered >= 0.9 * len(SEEDS), \
        f"95% CI covered truth in only {covered}/{len(SEEDS)} trials"
