"""Soak test: the full matrix of engines x synopsis types on the paper's
QY workload with deletions, cross-checked against the exact oracle.

Slower than a unit test (a few seconds total) but the closest thing to
the paper's §7 setup that still permits exact verification.
"""

import pytest

from repro import MaintainerConfig
from repro import JoinExecutor, JoinSynopsisMaintainer, SynopsisSpec, \
    parse_query
from repro.datagen.tpcds import TpcdsScale, setup_query
from repro.datagen.workload import Insert, StreamPlayer, \
    interleave_deletions

ENGINES = ("sjoin", "sjoin-opt", "sj")
SPECS = (
    ("fixed", SynopsisSpec.fixed_size(15)),
    ("fixed_wr", SynopsisSpec.with_replacement(15)),
    ("bernoulli", SynopsisSpec.bernoulli(0.01)),
)


@pytest.mark.parametrize("algo", ENGINES)
@pytest.mark.parametrize("kind,spec", SPECS, ids=[k for k, _ in SPECS])
def test_qy_matrix(algo, kind, spec):
    setup = setup_query("QY", TpcdsScale.tiny(), seed=4)
    maintainer = JoinSynopsisMaintainer(
        setup.db, setup.sql, MaintainerConfig(spec=spec, engine=algo, seed=13))
    player = StreamPlayer(maintainer)
    player.run(setup.preload)
    inserts = [e for e in setup.stream if isinstance(e, Insert)]
    events = interleave_deletions(
        inserts, delete_every={"ss": 40, "c2": 25},
        delete_count={"ss": 8, "c2": 3},
    )
    player.run(events)

    query = parse_query(setup.sql, setup.db)
    exact = set(JoinExecutor(setup.db, query).results())
    assert maintainer.total_results() == len(exact)
    results = set(maintainer.engine.synopsis_results())
    assert results <= exact
    if kind == "fixed":
        assert len(maintainer.engine.synopsis_results()) == \
            min(15, len(exact))
    elif kind == "fixed_wr" and exact:
        assert len(maintainer.engine.raw_samples()) == 15
