"""Statistics substrate tests: column stats + selectivity estimation."""

import random

import pytest

from repro import MaintainerConfig
from repro import (
    BandPredicate,
    Column,
    ComparisonOp,
    Database,
    JoinPredicate,
    JoinSynopsisMaintainer,
    SynopsisSpec,
    TableSchema,
    parse_query,
)
from repro.query.predicates import FilterPredicate
from repro.stats.column_stats import ColumnStats, collect_stats
from repro.stats.selectivity import (
    SELECTIVITY_FLOOR,
    estimate_filter_selectivity,
    estimate_theta_selectivity,
)


def table_with(values, name="t"):
    db = Database()
    table = db.create_table(
        TableSchema(name, [Column("a", nullable=True)])
    )
    for v in values:
        table.insert((v,))
    return table


class TestCollectStats:
    def test_basic_summary(self):
        table = table_with(list(range(100)))
        stats = collect_stats(table)
        col = stats.column("a")
        assert col.row_count == 100
        assert col.min_value == 0 and col.max_value == 99
        assert col.null_count == 0
        assert 90 <= col.distinct_estimate <= 100

    def test_null_fraction(self):
        table = table_with([1, None, 3, None])
        col = collect_stats(table).column("a")
        assert col.null_count == 2
        assert col.null_fraction == 0.5

    def test_empty_table(self):
        table = table_with([])
        col = collect_stats(table).column("a")
        assert col.row_count == 0
        assert col.boundaries == []
        assert col.distinct_estimate == 0

    def test_sampling_kicks_in(self):
        table = table_with(list(range(5000)))
        stats = collect_stats(table, sample_limit=500)
        col = stats.column("a")
        assert col.sample_size == 500
        assert col.row_count == 5000
        # distinct scale-up: all sampled values are singletons
        assert col.distinct_estimate > 2000

    def test_repeated_values_distinct_estimate(self):
        table = table_with([1, 2, 3] * 200)
        col = collect_stats(table).column("a")
        assert col.distinct_estimate == 3

    def test_fraction_below(self):
        table = table_with(list(range(1000)))
        col = collect_stats(table, buckets=50)
        frac = col.column("a").fraction_below(500, inclusive=True)
        assert abs(frac - 0.5) < 0.1

    def test_fraction_between(self):
        table = table_with(list(range(1000)))
        col = collect_stats(table, buckets=50).column("a")
        frac = col.fraction_between(250, 750)
        assert abs(frac - 0.5) < 0.12
        assert col.fraction_between(2000, 3000) == 0.0
        assert abs(col.fraction_between(None, None) - 1.0) < 1e-9


class TestFilterSelectivity:
    def make_stats(self):
        return collect_stats(table_with(list(range(100)))).column("a")

    @pytest.mark.parametrize("op,const,expect", [
        (ComparisonOp.LT, 50, 0.5),
        (ComparisonOp.LE, 50, 0.5),
        (ComparisonOp.GT, 75, 0.25),
        (ComparisonOp.GE, 25, 0.75),
    ])
    def test_range_filters(self, op, const, expect):
        flt = FilterPredicate("t", "a", op, const)
        est = estimate_filter_selectivity(flt, self.make_stats())
        assert abs(est - expect) < 0.12

    def test_equality_filter(self):
        flt = FilterPredicate("t", "a", ComparisonOp.EQ, 5)
        est = estimate_filter_selectivity(flt, self.make_stats())
        assert SELECTIVITY_FLOOR <= est <= 0.05


class TestThetaSelectivity:
    def uniform_stats(self, n=1000, name="t"):
        return collect_stats(
            table_with(list(range(n)), name), buckets=64
        ).column("a")

    def test_equality_is_inverse_distinct(self):
        left = self.uniform_stats()
        right = self.uniform_stats(name="u")
        pred = JoinPredicate("l", "a", ComparisonOp.EQ, "r", "a")
        est = estimate_theta_selectivity(pred, left, right)
        assert est == pytest.approx(SELECTIVITY_FLOOR, abs=1e-6) or \
            est <= 0.02

    def test_inequality_half(self):
        left = self.uniform_stats()
        right = self.uniform_stats(name="u")
        pred = JoinPredicate("l", "a", ComparisonOp.LE, "r", "a")
        est = estimate_theta_selectivity(pred, left, right)
        assert abs(est - 0.5) < 0.1

    def test_band_fraction(self):
        left = self.uniform_stats()
        right = self.uniform_stats(name="u")
        pred = BandPredicate("l", "a", "r", "a", width=100)
        est = estimate_theta_selectivity(pred, left, right)
        # |l - r| <= 100 over uniform [0,1000)^2: ~0.19 of pairs
        assert 0.08 < est < 0.35

    def test_fallback_without_histograms(self):
        empty = ColumnStats("a", 0, 0, 0)
        pred = JoinPredicate("l", "a", ComparisonOp.LE, "r", "a")
        est = estimate_theta_selectivity(pred, empty, empty)
        assert est == pytest.approx(1 / 3)


class TestMaintainerIntegration:
    def test_enlargement_from_statistics(self):
        """Preloaded data + a demoted inequality edge: the maintainer
        estimates f from stats and over-allocates by ~1/f."""
        db = Database()
        for name in ("r", "s", "t"):
            db.create_table(
                TableSchema(name, [Column("a"), Column("b")])
            )
        rng = random.Random(0)
        for name in ("r", "s", "t"):
            for i in range(300):
                db.insert(name, (rng.randrange(10), rng.randrange(100)))
        # cycle: r-s, s-t, t-r; the t.b <= r.b edge is demoted
        sql = ("SELECT * FROM r, s, t WHERE r.a = s.a AND s.a = t.a "
               "AND t.b <= r.b")
        m = JoinSynopsisMaintainer(
            db, sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=0))
        # f ~ 0.5 -> factor 2
        assert m.engine.spec.size in (20, 30)

    def test_statistics_can_be_disabled(self):
        db = Database()
        for name in ("r", "s", "t"):
            db.create_table(TableSchema(name, [Column("a"), Column("b")]))
            for i in range(50):
                db.insert(name, (i % 5, i))
        sql = ("SELECT * FROM r, s, t WHERE r.a = s.a AND s.a = t.a "
               "AND t.b <= r.b")
        m = JoinSynopsisMaintainer(
            db, sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=0, use_statistics=False))
        assert m.engine.spec.size == 10
