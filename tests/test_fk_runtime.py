"""Unit tests for the FK runtime pieces (MemberHash, CombinedNodeRuntime)."""

import pytest

from repro import (
    Column,
    Database,
    ForeignKey,
    IntegrityError,
    TableSchema,
    parse_query,
)
from repro.core.fk_runtime import CombinedNodeRuntime, MemberHash
from repro.query.planner import CollapsedMember, plan_query


def member(alias="dim"):
    return CollapsedMember(alias=alias, orig_index=1, base_table="dim",
                           parent_alias="fact", fk_columns=("f_dim",),
                           pk_columns=("d_id",))


class TestMemberHash:
    def test_register_lookup_unregister(self):
        h = MemberHash(member(), filtered=False)
        h.register((5,), 0, (5, "x"))
        assert h.lookup((5,)) == (0, (5, "x"))
        assert len(h) == 1
        h.unregister((5,))
        assert h.lookup((5,)) is None

    def test_duplicate_key_raises(self):
        h = MemberHash(member(), filtered=False)
        h.register((5,), 0, (5, "x"))
        with pytest.raises(IntegrityError):
            h.register((5,), 1, (5, "y"))

    def test_unregister_missing_raises(self):
        h = MemberHash(member(), filtered=False)
        with pytest.raises(IntegrityError):
            h.unregister((5,))

    def test_refcount_blocks_unregister(self):
        h = MemberHash(member(), filtered=False)
        h.register((5,), 0, (5, "x"))
        h.add_reference((5,))
        with pytest.raises(IntegrityError):
            h.unregister((5,))
        h.drop_reference((5,))
        h.unregister((5,))

    def test_reference_underflow_raises(self):
        h = MemberHash(member(), filtered=False)
        with pytest.raises(IntegrityError):
            h.drop_reference((5,))

    def test_refcount_nesting(self):
        h = MemberHash(member(), filtered=False)
        h.register((5,), 0, (5, "x"))
        h.add_reference((5,))
        h.add_reference((5,))
        h.drop_reference((5,))
        with pytest.raises(IntegrityError):
            h.unregister((5,))
        h.drop_reference((5,))
        h.unregister((5,))


def build_runtime():
    db = Database()
    db.create_table(TableSchema(
        "dim", [Column("d_id"), Column("band")], primary_key=("d_id",)))
    db.create_table(TableSchema(
        "fact", [Column("f_dim"), Column("val")],
        foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),)))
    db.create_table(TableSchema("other", [Column("band")]))
    query = parse_query(
        "SELECT * FROM fact, dim, other "
        "WHERE fact.f_dim = dim.d_id AND dim.band = other.band", db)
    plan = plan_query(query, db, fk_optimize=True)
    node = plan.node("fact__dim")
    return db, CombinedNodeRuntime(node, db, frozenset())


class TestCombinedNodeRuntime:
    def test_assemble_layout(self):
        db, runtime = build_runtime()
        runtime.register_member("dim", 0, (7, 99))
        tid, row = runtime.assemble(3, (7, 42))
        # leading original tids, then fact columns, then dim columns
        assert row == (3, 0, 7, 42, 7, 99)
        assert runtime.has_combined(3)

    def test_assemble_missing_raises(self):
        db, runtime = build_runtime()
        with pytest.raises(IntegrityError):
            runtime.assemble(0, (12, 1))

    def test_disassemble_releases_references(self):
        db, runtime = build_runtime()
        runtime.register_member("dim", 0, (7, 99))
        runtime.assemble(3, (7, 42))
        combined_tid, row = runtime.disassemble(3)
        assert row[0] == 3
        assert not runtime.has_combined(3)
        runtime.unregister_member("dim", (7, 99))  # now allowed

    def test_disassemble_unknown_raises(self):
        db, runtime = build_runtime()
        with pytest.raises(IntegrityError):
            runtime.disassemble(123)

    def test_rejects_non_combined_node(self):
        db = Database()
        db.create_table(TableSchema("x", [Column("a")]))
        db.create_table(TableSchema("y", [Column("a")]))
        query = parse_query("SELECT * FROM x, y WHERE x.a = y.a", db)
        plan = plan_query(query, db)
        with pytest.raises(ValueError):
            CombinedNodeRuntime(plan.nodes[0], db, frozenset())
