"""Vertex hash index unit tests."""

from repro.index.hash_index import HashIndex


def test_get_or_create():
    idx = HashIndex()
    value, created = idx.get_or_create((1, 2), lambda: "fresh")
    assert created and value == "fresh"
    value, created = idx.get_or_create((1, 2), lambda: "other")
    assert not created and value == "fresh"
    assert len(idx) == 1


def test_get_and_contains():
    idx = HashIndex()
    idx.put((1,), "x")
    assert idx.get((1,)) == "x"
    assert idx.get((2,)) is None
    assert (1,) in idx
    assert (2,) not in idx


def test_remove():
    idx = HashIndex()
    idx.put((1,), "x")
    idx.remove((1,))
    assert len(idx) == 0


def test_stats_counters():
    idx = HashIndex()
    idx.get((1,))
    idx.get_or_create((1,), lambda: "v")
    idx.get((1,))
    assert idx.lookups == 3
    assert idx.misses == 2


def test_values_iteration():
    idx = HashIndex()
    idx.put((1,), "a")
    idx.put((2,), "b")
    assert sorted(idx.values()) == ["a", "b"]
    assert dict(idx.items()) == {(1,): "a", (2,): "b"}
