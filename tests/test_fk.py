"""Foreign-key optimisation tests: runtime behaviour, integrity, and
SJoin vs SJoin-opt equivalence (same J, same result sets)."""

import random

import pytest

from repro import (
    Column,
    Database,
    ForeignKey,
    IntegrityError,
    JoinExecutor,
    SJoinEngine,
    SynopsisSpec,
    TableSchema,
    parse_query,
)


def fk_db():
    db = Database()
    db.create_table(TableSchema(
        "dim", [Column("d_id"), Column("band")], primary_key=("d_id",)
    ))
    db.create_table(TableSchema(
        "fact", [Column("f_dim"), Column("val")],
        foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),),
    ))
    db.create_table(TableSchema("other", [Column("band"), Column("z")]))
    return db


FK_SQL = ("SELECT * FROM fact, dim, other "
          "WHERE fact.f_dim = dim.d_id AND dim.band = other.band")


def opt_engine(db, sql=FK_SQL, spec=None, seed=0):
    query = parse_query(sql, db)
    return SJoinEngine(db, query, spec or SynopsisSpec.fixed_size(5),
                       fk_optimize=True, seed=seed)


class TestRuntime:
    def test_dim_insert_triggers_nothing(self):
        db = fk_db()
        engine = opt_engine(db)
        engine.insert("dim", (1, 7))
        assert engine.total_results() == 0
        # combined node's heap is still empty
        combined = engine.plan.node("fact__dim")
        assert len(combined.table) == 0

    def test_fact_insert_combines(self):
        db = fk_db()
        engine = opt_engine(db)
        engine.insert("dim", (1, 7))
        engine.insert("other", (7, 0))
        engine.insert("fact", (1, 42))
        assert engine.total_results() == 1
        combined = engine.plan.node("fact__dim")
        assert len(combined.table) == 1
        row = combined.table.get(0)
        assert row[:2] == (0, 0)  # original tids of fact and dim

    def test_missing_pk_raises(self):
        db = fk_db()
        engine = opt_engine(db)
        with pytest.raises(IntegrityError):
            engine.insert("fact", (999, 1))

    def test_duplicate_pk_raises(self):
        db = fk_db()
        engine = opt_engine(db)
        engine.insert("dim", (1, 7))
        with pytest.raises(IntegrityError):
            engine.insert("dim", (1, 8))

    def test_delete_referenced_pk_raises(self):
        db = fk_db()
        engine = opt_engine(db)
        dim_tid = engine.insert("dim", (1, 7))
        engine.insert("fact", (1, 42))
        with pytest.raises(IntegrityError):
            engine.delete("dim", dim_tid)

    def test_delete_pk_after_facts_gone_ok(self):
        db = fk_db()
        engine = opt_engine(db)
        dim_tid = engine.insert("dim", (1, 7))
        fact_tid = engine.insert("fact", (1, 42))
        engine.delete("fact", fact_tid)
        engine.delete("dim", dim_tid)  # no error
        assert engine.total_results() == 0

    def test_fact_delete_removes_results(self):
        db = fk_db()
        engine = opt_engine(db)
        engine.insert("dim", (1, 7))
        engine.insert("other", (7, 0))
        fact_tid = engine.insert("fact", (1, 42))
        assert engine.total_results() == 1
        engine.delete("fact", fact_tid)
        assert engine.total_results() == 0

    def test_filtered_member_drops_silently(self):
        """A pre-filter on the PK side means missing lookups are drops,
        not integrity errors (§5.1 pre-filter + §6 interaction)."""
        db = fk_db()
        sql = (FK_SQL + " AND dim.band < 5")
        engine = opt_engine(db, sql)
        engine.insert("dim", (1, 7))   # filtered out (band >= 5)
        engine.insert("dim", (2, 3))   # kept
        engine.insert("other", (3, 0))
        assert engine.insert("fact", (1, 0)) >= 0  # silently dropped
        engine.insert("fact", (2, 0))
        assert engine.total_results() == 1

    def test_results_expand_to_original_tids(self):
        db = fk_db()
        engine = opt_engine(db)
        engine.insert("dim", (1, 7))
        engine.insert("other", (7, 5))
        engine.insert("fact", (1, 42))
        (result,) = engine.synopsis_results()
        # original order: fact, dim, other
        assert result == (0, 0, 0)
        exact = JoinExecutor(db, engine.query).results()
        assert [result] == exact


class TestEquivalence:
    def test_opt_and_plain_agree_on_random_workload(self):
        """SJoin and SJoin-opt maintain the same J and valid samples over
        a random FK workload with deletions."""
        rng = random.Random(4)
        dbs = {}
        engines = {}
        for name, fk_opt in (("plain", False), ("opt", True)):
            db = fk_db()
            query = parse_query(FK_SQL, db)
            dbs[name] = db
            engines[name] = SJoinEngine(
                db, query, SynopsisSpec.fixed_size(6),
                fk_optimize=fk_opt, seed=11,
            )
        dim_ids = []
        fact_tids = []
        for i in range(10):
            row = (i, rng.randrange(4))
            for e in engines.values():
                e.insert("dim", row)
            dim_ids.append(i)
        for step in range(120):
            if rng.random() < 0.25 and fact_tids:
                tid = fact_tids.pop(rng.randrange(len(fact_tids)))
                for e in engines.values():
                    e.delete("fact", tid)
            elif rng.random() < 0.5:
                row = (rng.randrange(4), step)
                for e in engines.values():
                    e.insert("other", row)
            else:
                row = (rng.choice(dim_ids), step)
                tids = [e.insert("fact", row) for e in engines.values()]
                assert tids[0] == tids[1]
                fact_tids.append(tids[0])
        assert engines["plain"].total_results() == \
            engines["opt"].total_results()
        exact = set(JoinExecutor(dbs["opt"], engines["opt"].query)
                    .results())
        for e in engines.values():
            assert set(e.synopsis_results()) <= exact
            assert len(e.synopsis_results()) == min(6, len(exact))

    def test_chain_collapse_runtime(self):
        """Two-level FK chain (fact -> mid -> dim) assembles through both
        hash lookups."""
        db = Database()
        db.create_table(TableSchema(
            "dim", [Column("d_id"), Column("x")], primary_key=("d_id",)))
        db.create_table(TableSchema(
            "mid", [Column("m_id"), Column("m_dim")],
            primary_key=("m_id",),
            foreign_keys=(ForeignKey(("m_dim",), "dim", ("d_id",)),)))
        db.create_table(TableSchema(
            "fact", [Column("f_mid"), Column("v")],
            foreign_keys=(ForeignKey(("f_mid",), "mid", ("m_id",)),)))
        db.create_table(TableSchema("other", [Column("x"), Column("y")]))
        sql = ("SELECT * FROM fact, mid, dim, other WHERE "
               "fact.f_mid = mid.m_id AND mid.m_dim = dim.d_id "
               "AND dim.x = other.x")
        engine = opt_engine(db, sql)
        assert sorted(n.alias for n in engine.plan.nodes) == \
            ["fact__mid__dim", "other"]
        engine.insert("dim", (5, 100))
        engine.insert("mid", (3, 5))
        engine.insert("other", (100, 0))
        engine.insert("fact", (3, 1))
        assert engine.total_results() == 1
        (result,) = engine.synopsis_results()
        assert result == (0, 0, 0, 0)
