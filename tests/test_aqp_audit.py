"""Per-query AQP accuracy auditing (repro.aqp.audit).

Ring and coverage mechanics on synthetic payloads, the labeled ``aqp.*``
metric series, and the seeded end-to-end contract: an honest estimator's
coverage flag stays quiet while a mis-calibrated one (overconfident CI)
is flagged within a handful of estimates — surfaced through the audit
payload, the coverage gauge, the event log, and ``GET
/queries/<name>/audit``.
"""

import json
import urllib.request

import pytest

from repro import (
    Column,
    Database,
    InsertOp,
    MaintainerConfig,
    QueryRegistry,
    SynopsisManager,
    SynopsisSpec,
    TableSchema,
)
from repro.aqp import AccuracyAuditor, AuditConfig
from repro.aqp.registry import RegisteredQuery
from repro.errors import InvalidArgumentError
from repro.obs import names as metric_names
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry, format_label_key

SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def make_manager(n=6, seed=7, names=("q",)):
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    manager = SynopsisManager(db, MaintainerConfig(seed=seed))
    for name in names:
        manager.register(name, SQL, MaintainerConfig(
            spec=SynopsisSpec.fixed_size(50)))
    manager.apply_batch(
        [InsertOp("r", (a, a * 10)) for a in range(n)]
        + [InsertOp("s", (a, a % 2)) for a in range(n)])
    return db, manager


def payload_for(truth, *, covered, confidence=0.95, estimate=None):
    """A synthetic estimate payload whose CI does/does not contain
    ``truth``."""
    value = truth if estimate is None else estimate
    if covered:
        ci = [value - 1.0, value + 1.0]
    else:
        ci = [value + 2.0, value + 3.0]
    return {"agg": "count", "sample_size": 10, "confidence": confidence,
            "value": value, "ci": ci, "epoch": 4}


class TestConfig:
    def test_validation(self):
        for bad in (dict(capacity=0), dict(truth_every=0),
                    dict(min_events=0), dict(z_slack=-1.0)):
            with pytest.raises(InvalidArgumentError):
                AuditConfig(**bad)

    def test_immutable(self):
        config = AuditConfig()
        with pytest.raises(AttributeError):
            config.capacity = 9


class TestAuditorMechanics:
    def test_observe_scores_coverage_and_relative_error(self):
        auditor = AccuracyAuditor(clock=lambda: 5.0)
        record = auditor.observe(
            "q", payload_for(100.0, covered=True, estimate=90.0),
            latency_ns=1234, truth=100.0)
        assert record.covered is False  # ci [89,91] misses truth 100
        assert record.relative_error == pytest.approx(0.1)
        assert record.latency_ns == 1234
        hit = auditor.observe("q", payload_for(100.0, covered=True),
                              latency_ns=1, truth=100.0)
        assert hit.covered is True
        audit = auditor.query_audit("q")
        assert (audit.estimates, audit.audited) == (2, 2)
        assert audit.coverage() == 0.5

    def test_unscored_without_truth(self):
        auditor = AccuracyAuditor()
        record = auditor.observe(
            "q", payload_for(10.0, covered=True), latency_ns=1)
        assert record.covered is None and record.truth is None
        audit = auditor.query_audit("q")
        assert audit.estimates == 1 and audit.audited == 0
        assert audit.coverage() is None

    def test_truth_every_sparsifies_scoring(self):
        auditor = AccuracyAuditor(config=AuditConfig(truth_every=3))
        for _ in range(6):
            auditor.observe("q", payload_for(10.0, covered=True),
                            latency_ns=1, truth=10.0)
        audit = auditor.query_audit("q")
        assert audit.eligible == 6
        assert audit.audited == 2  # every 3rd eligible estimate

    def test_ring_is_bounded_per_query(self):
        auditor = AccuracyAuditor(config=AuditConfig(capacity=4))
        for _ in range(9):
            auditor.observe("q", payload_for(10.0, covered=True),
                            latency_ns=1)
        audit = auditor.query_audit("q")
        assert audit.estimates == 9
        assert len(audit.ring) == 4

    def test_payload_limit(self):
        auditor = AccuracyAuditor()
        for i in range(5):
            auditor.observe("q", payload_for(float(i), covered=True),
                            latency_ns=1)
        body = auditor.payload("q", limit=2)
        assert body["estimates"] == 5
        assert [r["estimate"] for r in body["records"]] == [3.0, 4.0]
        json.dumps(body)

    def test_flag_trips_only_past_binomial_slack(self):
        config = AuditConfig(min_events=10, z_slack=3.0)
        auditor = AccuracyAuditor(config=config)
        # 9 scored misses: below min_events, must stay quiet
        for _ in range(9):
            auditor.observe("q", payload_for(10.0, covered=False),
                            latency_ns=1, truth=10.0)
        assert auditor.query_audit("q").coverage_flagged is False
        # the 10th miss crosses min_events with coverage 0 << nominal
        auditor.observe("q", payload_for(10.0, covered=False),
                        latency_ns=1, truth=10.0)
        assert auditor.query_audit("q").coverage_flagged is True

    def test_honest_coverage_keeps_flag_quiet(self):
        auditor = AccuracyAuditor(config=AuditConfig(min_events=10))
        for _ in range(50):
            auditor.observe("q", payload_for(10.0, covered=True),
                            latency_ns=1, truth=10.0)
        audit = auditor.query_audit("q")
        assert audit.coverage() == 1.0
        assert audit.coverage_flagged is False

    def test_flag_transition_emits_event_once(self):
        events = EventLog(sink=lambda p: None)
        auditor = AccuracyAuditor(
            events=events, config=AuditConfig(min_events=3))
        for _ in range(6):
            auditor.observe("q", payload_for(10.0, covered=False),
                            latency_ns=1, truth=10.0)
        drift = events.events("aqp.coverage_drift")
        assert len(drift) == 1  # rising edge only, not every estimate
        assert drift[0].fields["query"] == "q"
        assert auditor.query_audit("q").flag_count == 1

    def test_labeled_metric_children_per_query(self):
        obs = MetricsRegistry()
        auditor = AccuracyAuditor(obs=obs)
        auditor.observe("q1", payload_for(10.0, covered=True),
                        latency_ns=7, truth=10.0)
        auditor.observe("q2", payload_for(10.0, covered=True),
                        latency_ns=7)
        snap = obs.snapshot()
        key = lambda name, q: format_label_key(name, {"query": q})
        assert snap[key(metric_names.AQP_ESTIMATES, "q1")]["value"] == 1
        assert snap[key(metric_names.AQP_ESTIMATES, "q2")]["value"] == 1
        assert snap[key(metric_names.AQP_AUDITED, "q1")]["value"] == 1
        assert key(metric_names.AQP_AUDITED, "q2") not in snap
        assert snap[key(metric_names.AQP_COVERAGE, "q1")]["value"] == 1.0
        assert snap[key(
            metric_names.AQP_ESTIMATE_NS, "q1")]["count"] == 1


class Overconfident(RegisteredQuery):
    """A mis-calibrated estimator: halves the answer, claims a
    hairline CI around it — its stated 95% intervals never contain
    the exact join count."""

    def _compute(self, snapshot, agg, **kwargs):
        payload = super()._compute(snapshot, agg, **kwargs)
        value = (payload.get("value") or 0.0) * 0.5
        payload["value"] = value
        payload["ci"] = [value - 0.01, value + 0.01]
        return payload


class TestEndToEnd:
    def test_honest_query_quiet_miscalibrated_query_flagged(self):
        _, manager = make_manager(names=("q", "q_bad"))
        obs = MetricsRegistry()
        events = EventLog(sink=lambda p: None)
        registry = QueryRegistry(manager, obs=obs, events=events,
                                 audit=AuditConfig(min_events=5))
        honest = registry.get("q")
        bad = Overconfident(registry, "q_bad", honest.sql, honest.query)
        for _ in range(8):
            honest.estimate("count")
            bad.estimate("count")
        assert registry.audit.query_audit("q").coverage_flagged is False
        assert registry.audit.query_audit("q").coverage() == 1.0
        bad_audit = registry.audit.query_audit("q_bad")
        assert bad_audit.coverage() == 0.0
        assert bad_audit.coverage_flagged is True
        # the flag reaches the labeled gauge and the event log
        key = format_label_key(
            metric_names.AQP_COVERAGE_FLAGGED, {"query": "q_bad"})
        assert obs.snapshot()[key]["value"] == 1
        quiet_key = format_label_key(
            metric_names.AQP_COVERAGE_FLAGGED, {"query": "q"})
        assert obs.snapshot()[quiet_key]["value"] == 0
        (drift,) = events.events("aqp.coverage_drift")
        assert drift.fields["query"] == "q_bad"

    def test_audit_payload_via_registered_query(self):
        _, manager = make_manager()
        registry = QueryRegistry(manager)
        query = registry.get("q")
        query.estimate("count")
        body = query.audit()
        assert body["name"] == "q"
        assert body["audited"] == 1
        assert body["records"][-1]["covered"] is True

    def test_weighted_family_count_is_not_scored(self):
        # the weighted family's snapshot total is W, not the COUNT
        # truth: estimates must record unscored, never mis-scored
        db = Database()
        db.create_table(TableSchema("r", [Column("a"), Column("x")]))
        db.create_table(TableSchema("s", [Column("a"), Column("y")]))
        manager = SynopsisManager(db, MaintainerConfig(seed=7))
        manager.register("qw", SQL, MaintainerConfig(
            spec=SynopsisSpec.weighted_fixed_size(50, "r.x")))
        manager.apply_batch(
            [InsertOp("r", (a, a + 1)) for a in range(4)]
            + [InsertOp("s", (a, a)) for a in range(4)])
        registry = QueryRegistry(manager)
        registry.get("qw").estimate("count")
        audit = registry.audit.query_audit("qw")
        assert audit.estimates == 1 and audit.audited == 0


class TestHTTPEndpoint:
    def test_audit_endpoint_and_404(self):
        from repro import ServiceConfig, SynopsisService
        from repro.service import ServiceHTTPServer

        db = Database()
        db.create_table(TableSchema("r", [Column("a"), Column("x")]))
        db.create_table(TableSchema("s", [Column("a"), Column("y")]))
        manager = SynopsisManager(db, MaintainerConfig(seed=7))
        service = SynopsisService(
            manager, ServiceConfig(obs=MetricsRegistry()))
        try:
            with ServiceHTTPServer(service, port=0) as server:
                host, port = server.address
                base = f"http://{host}:{port}"

                def post(path, body):
                    req = urllib.request.Request(
                        base + path, json.dumps(body).encode(),
                        {"Content-Type": "application/json"})
                    return json.loads(urllib.request.urlopen(req).read())

                post("/query", {"sql": SQL, "name": "q1"})
                for a in range(4):
                    post("/insert", {"table": "r", "row": [a, a]})
                    post("/insert", {"table": "s", "row": [a, a]})
                post("/query/q1/estimate", {"agg": "count"})
                body = json.loads(urllib.request.urlopen(
                    base + "/queries/q1/audit?limit=5").read())
                assert body["name"] == "q1"
                assert body["estimates"] == 1
                assert body["records"][-1]["covered"] is True
                # per-query labeled series appear in the scrape
                metrics = urllib.request.urlopen(
                    base + "/metrics").read().decode()
                assert 'repro_aqp_estimates{query="q1"} 1' in metrics
                with pytest.raises(urllib.error.HTTPError) as exc:
                    urllib.request.urlopen(
                        base + "/queries/nope/audit")
                assert exc.value.code == 404
        finally:
            service.close()
