"""Weighted join graph tests (§4): weights, caches, maintenance.

The load-bearing property test: after any random interleaving of inserts
and deletes over a random acyclic query, every vertex's ``w_full``,
``w_out`` and cached ``W_in`` equal their brute-force definitions computed
from the exact executor.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Column, Database, JoinExecutor, TableSchema, parse_query
from repro.errors import TupleNotFoundError
from repro.graph.join_graph import WeightedJoinGraph
from repro.query.planner import plan_query

from conftest import random_query, random_row


def build_graph(db, sql):
    query = parse_query(sql, db)
    plan = plan_query(query, db)
    return WeightedJoinGraph(plan), query, plan


def simple_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a")]))
    db.create_table(TableSchema("s", [Column("a"), Column("b")]))
    db.create_table(TableSchema("t", [Column("b")]))
    return db


class TestBasics:
    def test_empty_graph(self):
        db = simple_db()
        graph, *_ = build_graph(
            db, "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
        )
        assert graph.total_results() == 0
        assert graph.vertex_count(0) == 0

    def test_single_insert_no_results(self):
        db = simple_db()
        graph, *_ = build_graph(
            db, "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
        )
        tid = db.insert("r", (1,))
        outcome = graph.insert_tuple(0, tid, (1,))
        assert outcome.new_results == 0
        assert graph.total_results() == 0

    def test_full_match_counts(self):
        db = simple_db()
        graph, *_ = build_graph(
            db, "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
        )
        graph.insert_tuple(0, db.insert("r", (1,)), (1,))
        graph.insert_tuple(2, db.insert("t", (9,)), (9,))
        outcome = graph.insert_tuple(1, db.insert("s", (1, 9)), (1, 9))
        assert outcome.new_results == 1
        assert graph.total_results() == 1

    def test_duplicate_join_keys_share_vertex(self):
        db = simple_db()
        graph, *_ = build_graph(
            db, "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
        )
        graph.insert_tuple(0, db.insert("r", (1,)), (1,))
        graph.insert_tuple(0, db.insert("r", (1,)), (1,))
        assert graph.vertex_count(0) == 1
        vertex = graph.vertex_of(0, (1,))
        assert vertex.ids == [0, 1]

    def test_delete_unknown_tuple_raises(self):
        db = simple_db()
        graph, *_ = build_graph(
            db, "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
        )
        with pytest.raises(TupleNotFoundError):
            graph.delete_tuple(0, 0, (1,))

    def test_vertex_removed_when_ids_empty(self):
        db = simple_db()
        graph, *_ = build_graph(
            db, "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
        )
        tid = db.insert("r", (1,))
        graph.insert_tuple(0, tid, (1,))
        graph.delete_tuple(0, tid, (1,))
        assert graph.vertex_count(0) == 0
        graph.check_invariants()

    def test_delta_view_block_is_suffix_of_vertex_block(self):
        db = simple_db()
        graph, *_ = build_graph(
            db, "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"
        )
        graph.insert_tuple(1, db.insert("s", (1, 9)), (1, 9))
        graph.insert_tuple(2, db.insert("t", (9,)), (9,))
        graph.insert_tuple(0, db.insert("r", (1,)), (1,))
        outcome = graph.insert_tuple(0, db.insert("r", (1,)), (1,))
        # two r tuples share the vertex; the new tuple's block is the
        # last per-tuple chunk
        assert outcome.new_results == 1
        assert outcome.view_start == 1


def brute_force_weights(db, query, plan, graph):
    """Check every vertex weight against the exact executor's counts."""
    tree = plan.tree
    for node in plan.nodes:
        hash_index = graph.hash_indexes[node.idx]
        rooted_cache = {}
        for vertex in list(hash_index.values()):
            # w_full: total join results whose node-tuple is in vertex.ids
            exact = JoinExecutor(db, query, include_filters=False,
                                 include_residual=False)
            full = [
                r for r in exact.iter_results()
                if r[node.idx] in vertex.ids
            ]
            assert vertex.w_full == len(full), (
                f"w_full mismatch at {vertex!r}: {vertex.w_full} != "
                f"{len(full)}"
            )
            # w_out[j]: results of the subjoin on the vertex's side of
            # edge (node, j) — count matches over the subtree away from j
            for nbr_idx, edge in graph.neighbors(node.idx):
                nbr_alias = plan.nodes[nbr_idx].alias
                if nbr_alias not in rooted_cache:
                    rooted_cache[nbr_alias] = tree.rooted_at(nbr_alias)
                rooted = rooted_cache[nbr_alias]
                sub_aliases = rooted.subtree_aliases(node.alias)
                count = _count_subjoin(db, query, plan, sub_aliases,
                                       node, vertex)
                assert vertex.w_out[nbr_idx] == count, (
                    f"w_out[{nbr_idx}] mismatch at {vertex!r}"
                )


def _count_subjoin(db, query, plan, sub_aliases, node, vertex):
    """Brute-force count of the subjoin over ``sub_aliases`` restricted to
    tuples of ``vertex``."""
    from repro.query.query import JoinQuery, RangeTable

    keep = set(sub_aliases)
    sub_rts = [RangeTable(a, a) for a in query.aliases if a in keep]
    sub_preds = [
        p for p in query.join_predicates
        if p.left in keep and p.right in keep
    ]
    # careful: only predicates on *tree* edges within the subtree
    tree_preds = []
    for edge in plan.tree.edges:
        if edge.a in keep and edge.b in keep:
            tree_preds.extend(edge.predicates)
    sub_query = JoinQuery(sub_rts, tree_preds)
    pos = [rt.alias for rt in sub_rts].index(node.alias)
    count = 0
    for result in JoinExecutor(db, sub_query, include_filters=False,
                               include_residual=False).iter_results():
        if result[pos] in vertex.ids:
            count += 1
    return count


class TestWeightsAgainstBruteForce:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=2, max_value=4))
    def test_random_updates_keep_weights_exact(self, seed, num_tables):
        rng = random.Random(seed)
        db, query = random_query(rng, num_tables)
        plan = plan_query(query, db)
        graph = WeightedJoinGraph(plan)
        live = {alias: [] for alias in query.aliases}
        tables = {
            alias: db.table(query.range_table(alias).table_name)
            for alias in query.aliases
        }
        for _ in range(30):
            if rng.random() < 0.3 and any(live.values()):
                alias = rng.choice([a for a in live if live[a]])
                tid = live[alias].pop(rng.randrange(len(live[alias])))
                row = tables[alias].get(tid)
                graph.delete_tuple(query.index_of(alias), tid, row)
                tables[alias].delete(tid)
            else:
                alias = rng.choice(list(live))
                row = random_row(rng, len(tables[alias].schema.columns), 4)
                tid = tables[alias].insert(row)
                graph.insert_tuple(query.index_of(alias), tid, row)
                live[alias].append(tid)
        graph.check_invariants()
        brute_force_weights(db, query, plan, graph)
        exact = JoinExecutor(db, query, include_filters=False,
                             include_residual=False).count()
        assert graph.total_results() == exact


class TestInsertOutcome:
    def test_new_results_match_executor_delta(self, rng):
        db, query = random_query(rng, 3)
        plan = plan_query(query, db)
        graph = WeightedJoinGraph(plan)
        tables = {
            alias: db.table(query.range_table(alias).table_name)
            for alias in query.aliases
        }
        for step in range(40):
            alias = rng.choice(list(query.aliases))
            row = random_row(rng, len(tables[alias].schema.columns), 4)
            tid = tables[alias].insert(row)
            outcome = graph.insert_tuple(query.index_of(alias), tid, row)
            delta = JoinExecutor(
                db, query, include_filters=False, include_residual=False
            ).delta_results(alias, tid)
            assert outcome.new_results == len(delta)
