"""End-to-end statistical validation (Theorem 5.1).

After a fixed interleaving of insertions and deletions, the synopsis must
be a uniform sample of the surviving join results — for every synopsis
type and both engines.  Each test replays the same workload under many
independent RNG seeds and chi-square-tests the per-result selection counts
against uniformity.
"""

import random
from collections import Counter

import pytest

from repro import (
    JoinExecutor,
    SJoinEngine,
    SymmetricJoinEngine,
    SynopsisSpec,
    parse_query,
)
from repro.catalog.database import Database

from conftest import chi_square_threshold, chi_square_uniform, make_tables


def build_workload(rng):
    """A fixed insert/delete script over a two-table many-to-many join."""
    script = []
    live = {"r": [], "s": []}
    counter = {"r": 0, "s": 0}
    for _ in range(70):
        if rng.random() < 0.28 and any(live.values()):
            alias = rng.choice([a for a in live if live[a]])
            tid = live[alias].pop(rng.randrange(len(live[alias])))
            script.append(("delete", alias, tid))
        else:
            alias = rng.choice(["r", "s"])
            row = (rng.randrange(3), counter[alias])
            counter[alias] += 1
            script.append(("insert", alias, row))
            live[alias].append(script.__len__())  # placeholder
    # re-simulate to get real tids
    fixed = []
    tids = {"r": [], "s": []}
    next_tid = {"r": 0, "s": 0}
    for op, alias, payload in script:
        if op == "insert":
            fixed.append(("insert", alias, payload))
            tids[alias].append(next_tid[alias])
            next_tid[alias] += 1
        else:
            if not tids[alias]:
                continue
            tid = tids[alias].pop(payload % len(tids[alias]))
            fixed.append(("delete", alias, tid))
    return fixed


def run_engine(engine_cls, spec, seed, script, fk=False):
    db = Database()
    make_tables(db, [("r", 2), ("s", 2)])
    query = parse_query("SELECT * FROM r, s WHERE r.c0 = s.c0", db)
    if engine_cls is SJoinEngine:
        engine = SJoinEngine(db, query, spec, seed=seed, fk_optimize=fk)
    else:
        engine = SymmetricJoinEngine(db, query, spec, seed=seed)
    for op, alias, payload in script:
        if op == "insert":
            engine.insert(alias, payload)
        else:
            engine.delete(alias, payload)
    return db, engine


@pytest.fixture(scope="module")
def script():
    return build_workload(random.Random(20240615))


@pytest.fixture(scope="module")
def exact_results(script):
    db, engine = run_engine(SJoinEngine, SynopsisSpec.fixed_size(1),
                            0, script)
    return sorted(JoinExecutor(db, engine.query).results())


TRIALS = 400


class TestSJoinUniformity:
    def test_fixed_without_replacement(self, script, exact_results):
        m = 4
        counts = Counter()
        for t in range(TRIALS):
            _, engine = run_engine(
                SJoinEngine, SynopsisSpec.fixed_size(m), t, script
            )
            samples = engine.raw_samples()
            assert len(samples) == min(m, len(exact_results))
            assert len(set(samples)) == len(samples)
            for s in samples:
                counts[s] += 1
        stat = chi_square_uniform([counts[r] for r in exact_results])
        assert stat < chi_square_threshold(len(exact_results) - 1)

    def test_fixed_with_replacement(self, script, exact_results):
        counts = Counter()
        for t in range(TRIALS):
            _, engine = run_engine(
                SJoinEngine, SynopsisSpec.with_replacement(3), t, script
            )
            for s in engine.raw_samples():
                counts[s] += 1
        stat = chi_square_uniform([counts[r] for r in exact_results])
        assert stat < chi_square_threshold(len(exact_results) - 1)

    def test_bernoulli(self, script, exact_results):
        p = 0.25
        counts = Counter()
        sizes = 0
        for t in range(TRIALS):
            _, engine = run_engine(
                SJoinEngine, SynopsisSpec.bernoulli(p), t, script
            )
            samples = engine.raw_samples()
            sizes += len(samples)
            for s in samples:
                counts[s] += 1
        # each surviving result included with probability ~p
        n = len(exact_results)
        assert abs(sizes / (TRIALS * n) - p) < 0.05
        stat = chi_square_uniform([counts[r] for r in exact_results])
        assert stat < chi_square_threshold(n - 1)


class TestSJUniformity:
    def test_fixed_without_replacement(self, script, exact_results):
        m = 4
        counts = Counter()
        for t in range(TRIALS):
            _, engine = run_engine(
                SymmetricJoinEngine, SynopsisSpec.fixed_size(m), t, script
            )
            samples = engine.raw_samples()
            assert len(samples) == min(m, len(exact_results))
            for s in samples:
                counts[s] += 1
        stat = chi_square_uniform([counts[r] for r in exact_results])
        assert stat < chi_square_threshold(len(exact_results) - 1)


class TestDeltaViewUniformity:
    def test_redraw_is_uniform(self):
        """Uniform re-draws via the full view: draw a random join number
        many times over a fixed database, chi-square the hit counts."""
        from repro.graph.join_number import map_join_number

        db = Database()
        make_tables(db, [("r", 2), ("s", 2)])
        query = parse_query("SELECT * FROM r, s WHERE r.c0 = s.c0", db)
        engine = SJoinEngine(db, query, SynopsisSpec.fixed_size(1), seed=0)
        rng = random.Random(8)
        for i in range(12):
            engine.insert("r", (rng.randrange(3), i))
            engine.insert("s", (rng.randrange(3), i))
        j = engine.total_results()
        exact = sorted(JoinExecutor(db, query).results())
        assert j == len(exact)
        draws = Counter()
        n = 8000
        for _ in range(n):
            draws[map_join_number(engine.graph, 0, rng.randrange(j))] += 1
        stat = chi_square_uniform([draws[r] for r in exact])
        assert stat < chi_square_threshold(len(exact) - 1)
