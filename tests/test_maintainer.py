"""Facade tests: SQL input, algorithm selection, residual filters and the
1/f synopsis enlargement (§5.1)."""

import pytest

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    JoinSynopsisMaintainer,
    SynopsisSpec,
    SynopsisError,
    TableSchema,
    parse_query,
)
from repro.core.sjoin import SJoinEngine
from repro.core.symmetric_join import SymmetricJoinEngine
from repro.query.executor import JoinExecutor
from repro.query.predicates import MultiTableFilter
from repro.query.query import JoinQuery


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    db.create_table(TableSchema("t", [Column("y"), Column("z")]))
    return db


class TestConstruction:
    def test_sql_or_query_object(self):
        db = make_db()
        sql = "SELECT * FROM r, s WHERE r.a = s.a"
        by_sql = JoinSynopsisMaintainer(db, sql, MaintainerConfig(seed=1))
        by_obj = JoinSynopsisMaintainer(db, parse_query(sql, db), MaintainerConfig(seed=1))
        assert str(by_sql.query) == str(by_obj.query)

    def test_algorithm_selection(self):
        db = make_db()
        sql = "SELECT * FROM r, s WHERE r.a = s.a"
        assert isinstance(
            JoinSynopsisMaintainer(db, sql, MaintainerConfig(engine="sj")).engine,
            SymmetricJoinEngine,
        )
        opt = JoinSynopsisMaintainer(db, sql, MaintainerConfig(engine="sjoin-opt"))
        assert isinstance(opt.engine, SJoinEngine)
        assert opt.engine.plan.fk_optimized
        plain = JoinSynopsisMaintainer(db, sql, MaintainerConfig(engine="sjoin"))
        assert not plain.engine.plan.fk_optimized

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SynopsisError):
            JoinSynopsisMaintainer(
                make_db(), "SELECT * FROM r, s WHERE r.a = s.a", MaintainerConfig(engine="magic"))

    def test_default_spec(self):
        m = JoinSynopsisMaintainer(
            make_db(), "SELECT * FROM r, s WHERE r.a = s.a"
        )
        assert m.requested_spec.kind == "fixed"
        assert m.requested_spec.size == 1000


class TestLifecycle:
    def test_insert_delete_synopsis(self):
        db = make_db()
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM r, s WHERE r.a = s.a", MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=0))
        m.insert("r", (1, 0))
        s_tid = m.insert("s", (1, 0))
        assert m.synopsis() == [(0, 0)]
        m.delete("s", s_tid)
        assert m.synopsis() == []
        assert m.total_results() == 0

    def test_synopsis_rows_materialise_payload(self):
        db = make_db()
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM r, s WHERE r.a = s.a", MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=0))
        m.insert("r", (1, 77))
        m.insert("s", (1, 88))
        (rows,) = m.synopsis_rows()
        assert rows == ((1, 77), (1, 88))

    def test_limit_caps_output(self):
        db = make_db()
        m = JoinSynopsisMaintainer(
            db, "SELECT * FROM r, s WHERE r.a = s.a", MaintainerConfig(spec=SynopsisSpec.fixed_size(3), seed=0))
        for i in range(5):
            m.insert("r", (1, i))
            m.insert("s", (1, i))
        assert len(m.synopsis()) == 3
        assert len(m.synopsis(limit=2)) == 2


class TestResidualFilters:
    def cyclic_query(self, db):
        # r-s, s-t, t-r: the t-r edge is demoted to a residual filter
        return parse_query(
            "SELECT * FROM r, s, t WHERE r.a = s.a AND s.y = t.y "
            "AND t.z <= r.x",
            db,
        )

    def test_demoted_predicate_filters_output(self):
        db = make_db()
        query = self.cyclic_query(db)
        m = JoinSynopsisMaintainer(
            db, query, MaintainerConfig(spec=SynopsisSpec.fixed_size(50), seed=0))
        m.insert("r", (1, 10))
        m.insert("s", (1, 5))
        m.insert("t", (5, 3))    # passes: 3 <= 10
        m.insert("t", (5, 99))   # fails: 99 > 10
        # tree results: 2; filtered synopsis: 1
        assert m.total_results() == 2
        assert m.synopsis() == [(0, 0, 0)]
        exact = JoinExecutor(db, query).results()
        assert m.synopsis() == exact

    def test_enlargement_applied(self):
        db = make_db()
        query = JoinQuery(
            parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
            .range_tables,
            parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
            .join_predicates,
            multi_filters=[MultiTableFilter(
                inputs=(("r", "x"), ("s", "y")),
                predicate=lambda x, y: x < y,
                selectivity_hint=0.25,
            )],
        )
        m = JoinSynopsisMaintainer(
            db, query, MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=0))
        # engine synopsis over-allocated by 1/0.25 = 4x
        assert m.engine.spec.size == 40
        # the facade still caps at the requested size
        for i in range(30):
            m.insert("r", (1, 0))
            m.insert("s", (1, i))
        assert len(m.synopsis()) <= 10

    def test_bernoulli_not_enlarged(self):
        db = make_db()
        query = self.cyclic_query(db)
        m = JoinSynopsisMaintainer(
            db, query, MaintainerConfig(spec=SynopsisSpec.bernoulli(0.5), seed=0))
        assert m.engine.spec.rate == 0.5
