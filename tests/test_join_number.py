"""Algorithm 2 tests: the join-number mapping is a bijection.

The key property: enumerating join numbers ``0 .. J-1`` with respect to
*any* root yields exactly the full join result set, each result once — on
random acyclic queries over random databases.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import JoinExecutor
from repro.graph.join_graph import WeightedJoinGraph
from repro.graph.join_number import JoinNumberError, map_join_number
from repro.graph.views import DeltaJoinView, FullJoinView
from repro.query.planner import plan_query

from conftest import random_query, random_row


def populated_graph(seed, num_tables=3, inserts=30, domain=4):
    rng = random.Random(seed)
    db, query = random_query(rng, num_tables)
    plan = plan_query(query, db)
    graph = WeightedJoinGraph(plan)
    tables = {
        alias: db.table(query.range_table(alias).table_name)
        for alias in query.aliases
    }
    for _ in range(inserts):
        alias = rng.choice(list(query.aliases))
        row = random_row(rng, len(tables[alias].schema.columns), domain)
        tid = tables[alias].insert(row)
        graph.insert_tuple(query.index_of(alias), tid, row)
    return db, query, plan, graph


class TestBijection:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=2, max_value=4))
    def test_enumeration_equals_exact_join(self, seed, num_tables):
        db, query, plan, graph = populated_graph(seed, num_tables)
        exact = sorted(JoinExecutor(
            db, query, include_filters=False, include_residual=False
        ).results())
        total = graph.total_results()
        assert total == len(exact)
        for root in range(plan.num_nodes):
            mapped = sorted(
                map_join_number(graph, root, l) for l in range(total)
            )
            assert mapped == exact, f"root {root} mapping is not a bijection"

    def test_out_of_range_raises(self):
        db, query, plan, graph = populated_graph(7)
        total = graph.total_results()
        with pytest.raises(JoinNumberError):
            map_join_number(graph, 0, total)
        with pytest.raises(JoinNumberError):
            map_join_number(graph, 0, -1)


class TestViews:
    def test_full_view_covers_everything(self):
        db, query, plan, graph = populated_graph(3)
        view = FullJoinView(graph)
        exact = sorted(JoinExecutor(
            db, query, include_filters=False, include_residual=False
        ).results())
        assert view.length() == len(exact)
        assert sorted(view) == exact

    def test_view_index_bounds(self):
        db, query, plan, graph = populated_graph(3)
        view = FullJoinView(graph)
        with pytest.raises(IndexError):
            view.get(view.length())
        with pytest.raises(IndexError):
            view.get(-1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_delta_view_is_exactly_the_new_results(self, seed):
        """After every insertion, the delta view enumerates exactly the
        join results involving the new tuple."""
        rng = random.Random(seed)
        db, query = random_query(rng, 3)
        plan = plan_query(query, db)
        graph = WeightedJoinGraph(plan)
        tables = {
            alias: db.table(query.range_table(alias).table_name)
            for alias in query.aliases
        }
        for _ in range(25):
            alias = rng.choice(list(query.aliases))
            node_idx = query.index_of(alias)
            row = random_row(rng, len(tables[alias].schema.columns), 3)
            tid = tables[alias].insert(row)
            outcome = graph.insert_tuple(node_idx, tid, row)
            view = DeltaJoinView.for_insert(graph, node_idx, outcome)
            got = sorted(view)
            expect = sorted(JoinExecutor(
                db, query, include_filters=False, include_residual=False
            ).delta_results(alias, tid))
            assert got == expect
