"""Typed stats dataclasses, batch updates, and the error-message fixes."""

import dataclasses

import pytest

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    DeleteOp,
    InsertOp,
    JoinSynopsisMaintainer,
    MaintainerStats,
    ManagerStats,
    SynopsisError,
    SynopsisManager,
    SynopsisSpec,
    TableSchema,
)
from repro.obs.metrics import MetricsRegistry

SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


def loaded_maintainer(**kwargs):
    maintainer = JoinSynopsisMaintainer(
        make_db(), SQL,
        MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=5,
                         **kwargs))
    for a in range(4):
        maintainer.insert("r", (a, a * 10))
        maintainer.insert("s", (a, a * 100))
    return maintainer


class TestMaintainerStats:
    def test_typed_snapshot(self):
        stats = loaded_maintainer().stats()
        assert isinstance(stats, MaintainerStats)
        assert stats.algorithm == "sjoin-opt"
        assert stats.total_results == 4
        assert stats.synopsis_size == 4
        assert stats.metrics["inserts"] == 8
        assert stats.metrics["deletes"] == 0

    def test_frozen(self):
        stats = loaded_maintainer().stats()
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.algorithm = "other"
        with pytest.raises(TypeError):
            stats.metrics["inserts"] = 0

    def test_dict_shim_deprecated(self):
        stats = loaded_maintainer().stats()
        with pytest.deprecated_call():
            assert stats["algorithm"] == "sjoin-opt"
        with pytest.deprecated_call():
            assert stats["inserts"] == 8

    def test_metrics_include_registry_snapshot_when_enabled(self):
        stats = loaded_maintainer(obs=MetricsRegistry()).stats()
        assert stats.metrics["engine.insert_ns"]["count"] == 8
        assert stats.metrics["table.r.insert_ns"]["count"] == 4

    def test_repr_names_algorithm_and_query(self):
        anonymous = loaded_maintainer(engine="sjoin")
        assert "algorithm='sjoin'" in repr(anonymous)
        assert "<unnamed>" in repr(anonymous)
        named = loaded_maintainer(name="q7")
        assert "name='q7'" in repr(named)
        assert "algorithm='sjoin-opt'" in repr(named)


class TestMaintainerBatchUpdates:
    def test_apply_mixed_ops(self):
        maintainer = loaded_maintainer()
        results = maintainer.apply([
            InsertOp("r", (9, 90)),
            DeleteOp("r", 0),
            InsertOp("s", (9, 900)),
        ])
        assert results[1] is None
        assert results[0] >= 0 and results[2] >= 0
        assert maintainer.engine.stats.inserts == 10
        assert maintainer.engine.stats.deletes == 1

    def test_batched_inserts_match_singles(self):
        rows = [(1, 10), (2, 20), (3, 30)]
        batch = JoinSynopsisMaintainer(
            make_db(), SQL,
            MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=5))
        singles = JoinSynopsisMaintainer(
            make_db(), SQL,
            MaintainerConfig(spec=SynopsisSpec.fixed_size(10), seed=5))
        tids = batch.apply_batch(
            [InsertOp("r", row) for row in rows]).tids
        assert list(tids) == [singles.insert("r", row) for row in rows]

    def test_unknown_op_rejected_with_label(self):
        maintainer = loaded_maintainer(name="q1")
        with pytest.raises(SynopsisError, match="query 'q1'.*sjoin-opt"):
            maintainer.apply(["not-an-op"])

    def test_op_rows_are_frozen_tuples(self):
        op = InsertOp("r", [1, 2])
        assert op.row == (1, 2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            op.target = "s"


class TestManagerStats:
    def test_aggregate_snapshot(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=1))
        manager.register("q1", SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        manager.register("q2", "SELECT * FROM r, s WHERE r.x = s.y", MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        for a in range(3):
            manager.insert("r", (a, a))
            manager.insert("s", (a, a))
        stats = manager.stats()
        assert isinstance(stats, ManagerStats)
        assert set(stats.queries) == {"q1", "q2"}
        assert stats.total_results == sum(
            q.total_results for q in stats.queries.values())
        assert stats.synopsis_size == sum(
            q.synopsis_size for q in stats.queries.values())
        with pytest.deprecated_call():
            assert stats["q1"].algorithm == "sjoin-opt"

    def test_manager_metrics_fanout_and_child_registries(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=1, obs=MetricsRegistry()))
        manager.register("q1", SQL)
        manager.register("q2", SQL)
        manager.insert("r", (1, 1))
        stats = manager.stats()
        # one base-table insert fanned out to both registered queries
        assert stats.metrics["manager.r.fanout"]["value"] == 2
        assert stats.metrics["manager.r.insert_ns"]["count"] == 1
        # each query has its own engine metrics (no cross-query collision)
        for name in ("q1", "q2"):
            per_query = stats.queries[name].metrics
            assert per_query["engine.insert_ns"]["count"] == 1

    def test_manager_batch_entry_points(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=1))
        manager.register("q1", SQL)
        batch = manager.apply_batch([InsertOp("r", (1, 1)),
                                     InsertOp("r", (2, 2))])
        assert batch.inserted == 2
        tids = batch.tids
        results = manager.apply([DeleteOp("r", tids[0]),
                                 InsertOp("s", (1, 5))])
        assert results[0] is None and results[1] >= 0
        assert not hasattr(manager, "insert_many")


class TestManagerErrorReporting:
    def test_registration_failure_names_query_and_algorithm(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=1))
        with pytest.raises(SynopsisError,
                           match="query 'bad'.*algorithm 'sjoin'"):
            manager.register("bad", "SELECT * FROM r, missing "
                                    "WHERE r.a = missing.a", MaintainerConfig(engine="sjoin"))

    def test_fanout_failure_names_query_and_algorithm(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=1))
        manager.register("q1", SQL)
        tid = manager.insert("r", (1, 1))
        # delete the tuple behind the manager's back so the engine's
        # notify_delete fails during fan-out
        manager.maintainer("q1").engine.notify_delete("r", tid, (1, 1))
        with pytest.raises(
            SynopsisError,
            match="query 'q1'.*algorithm 'sjoin-opt'.*alias 'r'",
        ):
            manager.delete("r", tid)
