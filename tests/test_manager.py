"""Multi-query manager tests: shared storage, fan-out, backfill."""

import random

import pytest

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    JoinExecutor,
    SynopsisError,
    SynopsisManager,
    SynopsisSpec,
    TableSchema,
    parse_query,
)


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("b")]))
    db.create_table(TableSchema("t", [Column("b"), Column("y")]))
    return db


RS = "SELECT * FROM r, s WHERE r.a = s.a"
ST = "SELECT * FROM s, t WHERE s.b = t.b"
RST = "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"


class TestRegistration:
    def test_register_and_names(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=0))
        manager.register("rs", RS)
        manager.register("st", ST)
        assert sorted(manager.names()) == ["rs", "st"]

    def test_duplicate_name_rejected(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=0))
        manager.register("rs", RS)
        with pytest.raises(SynopsisError):
            manager.register("rs", ST)

    def test_unregister(self):
        manager = SynopsisManager(make_db(), MaintainerConfig(seed=0))
        manager.register("rs", RS)
        manager.unregister("rs")
        assert manager.names() == []
        with pytest.raises(SynopsisError):
            manager.unregister("rs")
        with pytest.raises(SynopsisError):
            manager.synopsis("rs")

    def test_backfill_existing_data(self):
        db = make_db()
        db.insert("r", (1, 0))
        db.insert("s", (1, 5))
        manager = SynopsisManager(db, MaintainerConfig(seed=0))
        manager.register("rs", RS, MaintainerConfig(spec=SynopsisSpec.fixed_size(5)))
        assert manager.total_results("rs") == 1
        assert manager.synopsis("rs") == [(0, 0)]


class TestFanOut:
    def test_one_insert_updates_all_queries(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=0))
        manager.register("rs", RS, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        manager.register("st", ST, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        manager.register("rst", RST, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        manager.insert("r", (1, 0))
        manager.insert("s", (1, 7))
        manager.insert("t", (7, 0))
        assert manager.total_results("rs") == 1
        assert manager.total_results("st") == 1
        assert manager.total_results("rst") == 1

    def test_rows_stored_once(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=0))
        manager.register("rs", RS)
        manager.register("rst", RST)
        manager.insert("r", (1, 0))
        assert len(db.table("r")) == 1

    def test_delete_fans_out(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=0))
        manager.register("rs", RS, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        manager.register("st", ST, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        manager.insert("r", (1, 0))
        s_tid = manager.insert("s", (1, 7))
        manager.insert("t", (7, 0))
        manager.delete("s", s_tid)
        assert manager.total_results("rs") == 0
        assert manager.total_results("st") == 0
        assert not db.table("s").is_live(s_tid)

    def test_duplicate_alias_table(self):
        """A query using the same base table twice gets both aliases
        notified from one insert."""
        db = Database()
        db.create_table(TableSchema("u", [Column("a"), Column("b")]))
        manager = SynopsisManager(db, MaintainerConfig(seed=0))
        sql = "SELECT * FROM u u1, u u2 WHERE u1.b = u2.a"
        manager.register("self", sql, MaintainerConfig(spec=SynopsisSpec.fixed_size(10)))
        manager.insert("u", (5, 5))
        # (5,5) joins itself: u1.b=5 = u2.a=5
        assert manager.total_results("self") == 1

    def test_random_workload_matches_exact(self):
        rng = random.Random(9)
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=1))
        manager.register("rs", RS, MaintainerConfig(spec=SynopsisSpec.fixed_size(8)))
        manager.register("st", ST, MaintainerConfig(spec=SynopsisSpec.fixed_size(8), engine="sjoin"))
        manager.register("rst", RST, MaintainerConfig(spec=SynopsisSpec.fixed_size(8), engine="sj"))
        live = {"r": [], "s": [], "t": []}
        for _ in range(150):
            if rng.random() < 0.3 and any(live.values()):
                name = rng.choice([n for n in live if live[n]])
                tid = live[name].pop(rng.randrange(len(live[name])))
                manager.delete(name, tid)
            else:
                name = rng.choice(["r", "s", "t"])
                tid = manager.insert(
                    name, (rng.randrange(4), rng.randrange(4))
                )
                live[name].append(tid)
        for name, sql in (("rs", RS), ("st", ST), ("rst", RST)):
            query = parse_query(sql, db)
            exact = set(JoinExecutor(db, query).results())
            assert manager.total_results(name) == len(exact), name
            assert set(manager.synopsis(name)) <= exact, name

    def test_backfill_respects_fk_dependency_order(self):
        """Registering an FK-collapsed query on a populated database must
        backfill PK-side members before anchors — regardless of the
        FROM-clause order (the anchor table comes first in the query)."""
        from repro import ForeignKey

        db = Database()
        db.create_table(TableSchema(
            "dim", [Column("d_id"), Column("band")],
            primary_key=("d_id",)))
        db.create_table(TableSchema(
            "fact", [Column("f_dim"), Column("v")],
            foreign_keys=(ForeignKey(("f_dim",), "dim", ("d_id",)),)))
        db.create_table(TableSchema("other", [Column("band")]))
        # preload BEFORE registration; fact alias precedes dim in the SQL
        for d in range(4):
            db.insert("dim", (d, d % 2))
        for i in range(10):
            db.insert("fact", (i % 4, i))
        db.insert("other", (0,))
        db.insert("other", (1,))
        manager = SynopsisManager(db, MaintainerConfig(seed=0))
        manager.register(
            "fk", "SELECT * FROM fact, dim, other WHERE fact.f_dim = dim.d_id "
            "AND dim.band = other.band", MaintainerConfig(spec=SynopsisSpec.fixed_size(5)))
        exact = JoinExecutor(
            db, parse_query(
                "SELECT * FROM fact, dim, other "
                "WHERE fact.f_dim = dim.d_id AND dim.band = other.band",
                db)
        ).count()
        assert manager.total_results("fk") == exact == 10
        # and live updates still flow
        manager.insert("fact", (0, 99))
        assert manager.total_results("fk") == exact + 1

    def test_late_registration_sees_everything(self):
        db = make_db()
        manager = SynopsisManager(db, MaintainerConfig(seed=0))
        manager.insert("r", (1, 0))
        manager.insert("s", (1, 2))
        manager.register("rs", RS, MaintainerConfig(spec=SynopsisSpec.fixed_size(5)))
        manager.insert("s", (1, 3))
        query = parse_query(RS, db)
        exact = set(JoinExecutor(db, query).results())
        assert manager.total_results("rs") == len(exact) == 2
