"""Cost-model checks (§4.4, §6): the work counters should reflect the
paper's analysis — SJoin touches vertices, SJ touches partial join
results, and on many-to-many data the former is far smaller.
"""

import random

from repro import (
    Column,
    Database,
    SJoinEngine,
    SymmetricJoinEngine,
    SynopsisSpec,
    TableSchema,
    parse_query,
)


def duplicate_heavy_db():
    """Few distinct join values, many tuples per value: the many-to-many
    regime where vertex consolidation pays (§6 insertion-cost analysis)."""
    db = Database()
    for name in ("r", "s", "t"):
        db.create_table(TableSchema(name, [Column("a"), Column("b")]))
    return db


SQL = "SELECT * FROM r, s, t WHERE r.a = s.a AND s.b = t.b"


def test_sjoin_visits_far_fewer_vertices_than_sj_touches_tuples():
    rng = random.Random(1)
    db1 = duplicate_heavy_db()
    db2 = duplicate_heavy_db()
    q1 = parse_query(SQL, db1)
    q2 = parse_query(SQL, db2)
    sjoin = SJoinEngine(db1, q1, SynopsisSpec.fixed_size(5), seed=0)
    sj = SymmetricJoinEngine(db2, q2, SynopsisSpec.fixed_size(5), seed=0)
    # 2 distinct values of a / b -> huge fanout per vertex
    rows = [(rng.randrange(2), rng.randrange(2)) for _ in range(120)]
    for alias in ("r", "s", "t"):
        for row in rows:
            sjoin.insert(alias, row)
            sj.insert(alias, row)
    assert sjoin.total_results() == sj.total_results() > 10_000
    vertices = sjoin.graph.stats.vertices_visited
    tuples = sj.stats.tuples_accessed
    # §6: visited vertices ~ d1 d2 / (m1 m2); here m ~ 30-60 per vertex
    assert vertices * 20 < tuples, (vertices, tuples)


def test_sjoin_vertex_work_scales_with_distinct_values_not_tuples():
    """Doubling duplicates (same distinct values) must not double SJoin's
    per-insert vertex work."""
    def run(copies):
        db = duplicate_heavy_db()
        q = parse_query(SQL, db)
        engine = SJoinEngine(db, q, SynopsisSpec.fixed_size(5), seed=0)
        rng = random.Random(2)
        rows = [(rng.randrange(3), rng.randrange(3)) for _ in range(30)]
        for alias in ("r", "s", "t"):
            for row in rows * copies:
                engine.insert(alias, row)
        inserts = engine.stats.inserts
        return engine.graph.stats.vertices_visited / inserts

    light = run(1)
    heavy = run(4)
    # 4x the tuples, same 9 possible vertices per table: per-insert vertex
    # visits stay flat (within noise)
    assert heavy < 2 * light


def test_sj_tuple_work_scales_with_join_fanout():
    """SJ's per-insert work is the delta-join size: double the matching
    tuples, roughly double (or more) the accesses per insert."""
    def run(n):
        db = Database()
        for name in ("r", "s"):
            db.create_table(TableSchema(name, [Column("a")]))
        q = parse_query("SELECT * FROM r, s WHERE r.a = s.a", db)
        engine = SymmetricJoinEngine(db, q, SynopsisSpec.fixed_size(5),
                                     seed=0)
        for i in range(n):
            engine.insert("s", (1,))
        before = engine.stats.tuples_accessed
        engine.insert("r", (1,))
        return engine.stats.tuples_accessed - before

    assert run(40) == 40
    assert run(80) == 80
