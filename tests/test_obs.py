"""Observability layer: instruments, registry semantics, and the property
that metrics collection never changes maintenance behaviour."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MaintainerConfig
from repro import (
    Column,
    Database,
    JoinSynopsisMaintainer,
    SynopsisSpec,
    TableSchema,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    NUM_BUCKETS,
    OVERFLOW_LABEL_VALUE,
    Counter,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    as_registry,
    bucket_of,
    bucket_upper_bound,
    format_label_key,
)


class FakeClock:
    """Manually advanced nanosecond clock for deterministic timer tests."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


class TestBucketing:
    def test_small_values(self):
        assert bucket_of(0) == 0
        assert bucket_of(0.5) == 0
        assert bucket_of(1) == 1
        assert bucket_of(2) == 2
        assert bucket_of(3) == 2
        assert bucket_of(4) == 3

    def test_powers_of_two_are_bucket_lower_bounds(self):
        for k in range(1, 20):
            assert bucket_of(2 ** k) == k + 1
            assert bucket_of(2 ** k - 1) == k

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_of(2 ** 200) == NUM_BUCKETS - 1

    def test_upper_bounds(self):
        assert bucket_upper_bound(0) == 0
        assert bucket_upper_bound(1) == 1
        assert bucket_upper_bound(3) == 7

    @given(st.integers(min_value=0, max_value=2 ** 70))
    @settings(max_examples=200, deadline=None)
    def test_value_is_at_most_its_bucket_upper_bound(self, value):
        idx = bucket_of(value)
        if idx < NUM_BUCKETS - 1:  # last bucket absorbs the overflow
            assert value <= bucket_upper_bound(idx)
        if idx > 1:
            assert value > bucket_upper_bound(idx - 1)


class TestHistogram:
    def test_exact_aggregates(self):
        hist = MetricsRegistry().histogram("h")
        for value in (5, 1, 9):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 15
        assert hist.min == 1
        assert hist.max == 9
        assert hist.mean == 5.0

    def test_percentiles_resolve_to_clamped_bucket_upper_bounds(self):
        hist = MetricsRegistry().histogram("h")
        for _ in range(50):
            hist.observe(1)
        for _ in range(50):
            hist.observe(1000)
        assert hist.percentile(0.50) == 1.0
        # the bucket upper bound (1023) clamps to the observed max, so a
        # percentile can never exceed any value actually recorded
        assert hist.percentile(0.95) == 1000.0
        assert hist.percentile(0.99) == 1000.0

    def test_single_observation_pins_every_percentile(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(5)
        for q in (0.01, 0.5, 0.95, 0.99):
            assert hist.percentile(q) == 5.0

    def test_percentile_never_below_observed_min(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(3)
        hist.observe(900)
        assert hist.percentile(0.01) == 3.0

    def test_empty_percentile_is_zero(self):
        assert MetricsRegistry().histogram("h").percentile(0.5) == 0.0

    def test_bad_quantile_rejected(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(MetricError):
            hist.percentile(1.5)

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(12)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["c"] == {"type": "counter", "value": 3}
        assert snap["g"] == {"type": "gauge", "value": 7}
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"] == {"15": 1}


class TestTimer:
    def test_records_elapsed_ticks(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("t"):
            clock.now += 42
        assert registry.histogram("t").sum == 42

    def test_nested_reentrant_use(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        timer = registry.timer("t")
        with timer:
            clock.now += 5
            with timer:
                clock.now += 3
            clock.now += 2
        hist = registry.histogram("t")
        assert hist.count == 2
        assert hist.min == 3   # inner span
        assert hist.max == 10  # outer span includes the inner one
        assert hist.sum == 13

    def test_observes_even_when_body_raises(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with pytest.raises(RuntimeError):
            with registry.timer("t"):
                clock.now += 9
                raise RuntimeError("boom")
        assert registry.histogram("t").count == 1
        assert registry.histogram("t").sum == 9


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.histogram("x")

    def test_contains_and_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "c" not in registry
        assert registry.names() == ["a", "b"]

    def test_reset_keeps_instrument_references_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.snapshot()["c"]["value"] == 1


class TestLabels:
    def test_same_label_set_maps_to_same_child(self):
        registry = MetricsRegistry()
        counter = registry.counter("aqp.estimates")
        child = counter.labels(query="q1", agg="count")
        assert child is counter.labels(agg="count", query="q1")
        assert child is not counter

    def test_child_lives_under_canonical_key(self):
        registry = MetricsRegistry()
        registry.counter("aqp.estimates").labels(query="q1").inc(3)
        key = format_label_key("aqp.estimates", {"query": "q1"})
        assert key == 'aqp.estimates{query="q1"}'
        snap = registry.snapshot()
        assert snap[key]["value"] == 3
        assert snap[key]["labels"] == {"query": "q1"}
        # the flat head stays independent of its children
        assert snap["aqp.estimates"]["value"] == 0

    def test_children_cannot_be_labeled_further(self):
        registry = MetricsRegistry()
        child = registry.counter("c").labels(a="1")
        with pytest.raises(MetricError):
            child.labels(b="2")

    def test_label_name_must_be_identifier(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("c").labels(**{"not-valid": "x"})

    def test_empty_label_set_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("c").labels()

    def test_registering_a_braced_name_directly_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter('c{query="q1"}')

    def test_cardinality_bound_collapses_into_overflow_child(self):
        registry = MetricsRegistry(max_label_children=2)
        counter = registry.counter("c")
        counter.labels(q="a").inc()
        counter.labels(q="b").inc()
        spill_1 = counter.labels(q="c")
        spill_2 = counter.labels(q="d")
        assert spill_1 is spill_2
        assert spill_1.label_set == {"q": OVERFLOW_LABEL_VALUE}
        spill_1.inc(2)
        snap = registry.snapshot()
        key = format_label_key("c", {"q": OVERFLOW_LABEL_VALUE})
        assert snap[key]["value"] == 2
        # existing children keep working after the bound is hit
        counter.labels(q="a").inc()
        assert registry.snapshot()[format_label_key(
            "c", {"q": "a"})]["value"] == 2

    def test_cardinality_bound_is_per_family(self):
        registry = MetricsRegistry(max_label_children=1)
        registry.counter("c1").labels(q="a").inc()
        # a different family gets its own budget
        child = registry.counter("c2").labels(q="z")
        assert child.label_set == {"q": "z"}

    def test_labeled_timer_records_into_child(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.timer("t", query="q1"):
            clock.now += 17
        key = format_label_key("t", {"query": "q1"})
        assert registry.snapshot()[key]["sum"] == 17
        assert registry.snapshot()["t"]["count"] == 0

    def test_unowned_instrument_rejects_labels(self):
        with pytest.raises(MetricError):
            Counter("loose").labels(q="1")

    def test_null_registry_labels_are_free_noops(self):
        instrument = NULL_REGISTRY.counter("x")
        assert instrument.labels(query="q1") is instrument
        assert NULL_REGISTRY.timer("t", query="q1") is instrument


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_everything_is_a_shared_noop(self):
        registry = NullRegistry()
        counter = registry.counter("c")
        assert counter is registry.histogram("h")
        assert counter is registry.timer("t")
        counter.inc()
        counter.observe(3)
        counter.set(4)
        with registry.timer("t"):
            pass
        assert registry.snapshot() == {}

    def test_as_registry_normalisation(self):
        assert as_registry(None) is NULL_REGISTRY
        real = MetricsRegistry()
        assert as_registry(real) is real


SQL = "SELECT * FROM r, s WHERE r.a = s.a"


def make_db():
    db = Database()
    db.create_table(TableSchema("r", [Column("a"), Column("x")]))
    db.create_table(TableSchema("s", [Column("a"), Column("y")]))
    return db


class TestBehaviourNeutrality:
    """Enabling metrics must never change what gets sampled."""

    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["r", "s"]),
                      st.integers(0, 4), st.integers(0, 9)),
            max_size=60,
        ),
        deletes=st.lists(st.integers(0, 10 ** 6), max_size=12),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_synopsis_with_and_without_metrics(self, ops, deletes):
        def run(obs):
            maintainer = JoinSynopsisMaintainer(
                make_db(), SQL, MaintainerConfig(spec=SynopsisSpec.fixed_size(8), seed=99, obs=obs))
            live = []
            for alias, a, v in ops:
                live.append((alias, maintainer.insert(alias, (a, v))))
            for pick in deletes:
                if not live:
                    break
                alias, tid = live.pop(pick % len(live))
                maintainer.delete(alias, tid)
            return (sorted(maintainer.synopsis()),
                    maintainer.total_results())

        assert run(None) == run(MetricsRegistry())
