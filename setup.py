"""Legacy build shim: metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "SJoin: efficient join synopsis maintenance for data warehouses "
        "(SIGMOD 2020 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
)
